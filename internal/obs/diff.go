package obs

import (
	"fmt"
	"math"
	"sort"
)

// DefaultThreshold is the relative change beyond which a metric counts as
// regressed: the CI gate's ±15%.
const DefaultThreshold = 0.15

// DiffOptions parameterizes Compare.
type DiffOptions struct {
	// Threshold is the relative regression gate (0.15 = 15%). Zero means
	// DefaultThreshold.
	Threshold float64
}

// Finding is one metric comparison that crossed the threshold (either
// direction) or could not be made at all.
type Finding struct {
	// Entry and Metric name the measurement; Metric is "" for entry-level
	// fields such as allocations or wall time.
	Entry  string
	Metric string
	Old    float64
	New    float64
	// Delta is the signed relative change (new-old)/old, +Inf when old is
	// zero and new is not.
	Delta float64
	// Regressed marks a change in the metric's worse direction beyond the
	// threshold; the opposite crossing is an improvement finding.
	Regressed bool
	// Hard marks findings on deterministic metrics: a hard regression
	// fails the gate, a soft (noisy) one only annotates.
	Hard bool
	// Missing marks entries/metrics present in the baseline but absent
	// from the new run (or vice versa); always soft.
	Missing bool
	Note    string
}

// String renders the finding for benchdiff output.
func (f Finding) String() string {
	name := f.Entry
	if f.Metric != "" {
		name += "/" + f.Metric
	}
	if f.Missing {
		return fmt.Sprintf("%-45s %s", name, f.Note)
	}
	kind := "improved"
	if f.Regressed {
		kind = "REGRESSED"
		if f.Hard {
			kind = "REGRESSED(hard)"
		}
	}
	return fmt.Sprintf("%-45s %s %+.1f%%  %.4g -> %.4g", name, kind, 100*f.Delta, f.Old, f.New)
}

// Result is the outcome of comparing two manifests.
type Result struct {
	// Regressions crossed the threshold in the worse direction; the gate
	// fails when any of them is Hard.
	Regressions []Finding
	// Improvements crossed the threshold in the better direction — a cue
	// to refresh the committed baseline.
	Improvements []Finding
	// Notes are soft findings that block nothing: missing entries,
	// zero-baseline metrics, schema drift between labels.
	Notes []Finding
}

// HardFailure reports whether any regression is on a deterministic metric.
func (r *Result) HardFailure() bool {
	for _, f := range r.Regressions {
		if f.Hard {
			return true
		}
	}
	return false
}

// Compare evaluates a new manifest against a baseline. Every entry of the
// baseline is matched by name; each shared metric is compared under the
// threshold, honouring the metric's direction and determinism class.
// Entry-level fields are gated too: AllocsPerOp as a hard metric, WallNS
// and BytesPerOp as noisy ones.
func Compare(base, cur *Manifest, opt DiffOptions) *Result {
	if opt.Threshold <= 0 {
		opt.Threshold = DefaultThreshold
	}
	res := &Result{}
	for _, be := range base.Entries {
		ce, ok := cur.Entry(be.Name)
		if !ok {
			res.Notes = append(res.Notes, Finding{
				Entry: be.Name, Missing: true,
				Note: "entry present in baseline but missing from new run",
			})
			continue
		}
		compareEntry(res, be, ce, opt.Threshold)
	}
	for _, ce := range cur.Entries {
		if _, ok := base.Entry(ce.Name); !ok {
			res.Notes = append(res.Notes, Finding{
				Entry: ce.Name, Missing: true,
				Note: "entry new since baseline (add it by refreshing BENCH_baseline.json)",
			})
		}
	}
	sort.Slice(res.Regressions, func(i, j int) bool {
		if res.Regressions[i].Hard != res.Regressions[j].Hard {
			return res.Regressions[i].Hard
		}
		return math.Abs(res.Regressions[i].Delta) > math.Abs(res.Regressions[j].Delta)
	})
	return res
}

func compareEntry(res *Result, be, ce Entry, threshold float64) {
	// Entry-level fields. Wall time and bytes/op depend on the machine and
	// the allocator's size classes; allocation counts are a pure function
	// of code path + seed and gate hard.
	compareValue(res, be.Name, "allocs/op", float64(be.AllocsPerOp), float64(ce.AllocsPerOp),
		threshold, true, true)
	compareValue(res, be.Name, "wall", float64(be.WallNS), float64(ce.WallNS),
		threshold, false, true)
	compareValue(res, be.Name, "bytes/op", float64(be.BytesPerOp), float64(ce.BytesPerOp),
		threshold, false, true)

	names := make([]string, 0, len(be.Metrics))
	for name := range be.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bm := be.Metrics[name]
		cm, ok := ce.Metrics[name]
		if !ok {
			res.Notes = append(res.Notes, Finding{
				Entry: be.Name, Metric: name, Missing: true,
				Note: "metric present in baseline but missing from new run",
			})
			continue
		}
		th := threshold
		if bm.Threshold > 0 {
			// The baseline's per-metric override wins: tail latencies and
			// other high-variance measurements declare their own leash.
			th = bm.Threshold
		}
		compareValue(res, be.Name, name, bm.Value, cm.Value, th,
			bm.Deterministic, bm.LowerIsBetter)
	}
}

// compareValue files one finding if the relative change crosses the
// threshold. A zero baseline with a nonzero new value cannot produce a
// relative delta; it is filed as a note (hard metrics excepted: appearing
// from zero is a real regression for counts).
func compareValue(res *Result, entry, metric string, oldV, newV float64, threshold float64, hard, lowerBetter bool) {
	if oldV == 0 && newV == 0 {
		return
	}
	if oldV == 0 {
		f := Finding{Entry: entry, Metric: metric, Old: oldV, New: newV,
			Delta: math.Inf(1), Hard: hard,
			Note: "baseline value is zero"}
		if hard && lowerBetter {
			f.Regressed = true
			res.Regressions = append(res.Regressions, f)
		} else {
			res.Notes = append(res.Notes, f)
		}
		return
	}
	delta := (newV - oldV) / math.Abs(oldV)
	if math.Abs(delta) <= threshold {
		return
	}
	worse := delta > 0 == lowerBetter
	f := Finding{Entry: entry, Metric: metric, Old: oldV, New: newV, Delta: delta,
		Regressed: worse, Hard: hard && worse}
	if worse {
		res.Regressions = append(res.Regressions, f)
	} else {
		res.Improvements = append(res.Improvements, f)
	}
}
