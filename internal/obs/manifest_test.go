package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleManifest(label string) *Manifest {
	c := NewCollector()
	c.Add(Entry{
		Name:        "BenchmarkTable41",
		Scale:       ScaleInfo{Nodes: 192, Queries: 250, Tuples: 250, Seed: 1},
		Iterations:  1,
		WallNS:      120_000_000,
		AllocsPerOp: 50_000,
		BytesPerOp:  4_000_000,
		Metrics: map[string]Metric{
			"SAI-join-msgs": Det(14, "msgs"),
		},
	})
	c.Add(Entry{
		Name:  "Headline",
		Scale: ScaleInfo{Nodes: 192, Queries: 250, Tuples: 250, Seed: 1},
		Metrics: map[string]Metric{
			"hops/tuple": Det(22.5, "hops"),
			"TF-gini":    Det(0.61, "gini"),
		},
	})
	return c.Manifest(label)
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	m := sampleManifest("test")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchemaVersion || got.Label != "test" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(got.Entries))
	}
	// Entries must be sorted by name for diffable artifacts.
	if got.Entries[0].Name != "BenchmarkTable41" || got.Entries[1].Name != "Headline" {
		t.Fatalf("entries not sorted: %s, %s", got.Entries[0].Name, got.Entries[1].Name)
	}
	e, ok := got.Entry("Headline")
	if !ok {
		t.Fatal("Entry lookup failed")
	}
	if m := e.Metrics["hops/tuple"]; m.Value != 22.5 || !m.Deterministic || !m.LowerIsBetter {
		t.Fatalf("metric lost in round trip: %+v", m)
	}
	// No stray temp files from the atomic write.
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("stray files after atomic write: %v", files)
	}
}

func TestReadManifestRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "label": "x", "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestReadManifestRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("want parse error")
	}
}

func TestCollectorReplacesByName(t *testing.T) {
	c := NewCollector()
	c.Add(Entry{Name: "B", WallNS: 1})
	c.Add(Entry{Name: "B", WallNS: 2})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	m := c.Manifest("x")
	if m.Entries[0].WallNS != 2 {
		t.Fatal("re-added entry did not replace the old one")
	}
}
