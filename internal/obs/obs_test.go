package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter not interned by name")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if got := g.HighWater(); got != 7 {
		t.Fatalf("high-water = %d, want 7", got)
	}
	g.Reset()
	if g.Value() != 0 || g.HighWater() != 0 {
		t.Fatal("gauge Reset did not clear value and high-water mark")
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry // disabled layer
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", 1, 2)
	v := r.CounterVec("x")
	c.Inc()
	c.Add(5)
	g.Set(9)
	g.Add(1)
	h.Observe(3)
	v.Add("k", 2)
	v.With("k").Inc()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || v.Total() != 0 {
		t.Fatal("nil handles must discard all updates")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	r.Reset() // must not panic
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hops", 1, 2, 4, 8)
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := h.Sum(); got != 121 {
		t.Fatalf("sum = %d, want 121", got)
	}
	bounds, counts := h.Buckets()
	wantCounts := []int64{3, 1, 1, 1, 2} // ≤1:{0,1,1} ≤2:{2} ≤4:{3} ≤8:{5} overflow:{9,100}
	for i, want := range wantCounts {
		if counts[i] != want {
			t.Fatalf("bucket %d (≤%d) = %d, want %d", i, bounds[i], counts[i], want)
		}
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %d, want 2", q)
	}
	if q := h.Quantile(1.0); q != math.MaxInt64 {
		t.Fatalf("p100 = %d, want overflow sentinel", q)
	}
	if q := h.Quantile(0.5); h.Mean() == 0 || q == 0 {
		t.Fatal("mean/quantile must be nonzero with observations")
	}
}

func TestCounterVecInterningAndSnapshot(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("msgs")
	v.Add("join", 3)
	v.Add("lookup", 1)
	join := v.With("join")
	join.Inc()
	if v.Value("join") != 4 || v.Value("lookup") != 1 || v.Value("absent") != 0 {
		t.Fatalf("per-label values wrong: %v", v.Snapshot())
	}
	if v.Total() != 5 {
		t.Fatalf("total = %d, want 5", v.Total())
	}
	snap := r.Snapshot()
	if snap["msgs{join}"] != 4 || snap["msgs.total"] != 5 {
		t.Fatalf("snapshot missing vec entries: %v", snap)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.CounterVec("v").Add("k", 1)
				r.Histogram("h", 1, 10).Observe(int64(j % 20))
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.CounterVec("v").Total(); got != 8000 {
		t.Fatalf("concurrent vec total = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(5)
	r.Histogram("h", 1).Observe(2)
	r.CounterVec("v").Add("k", 7)
	r.Reset()
	snap := r.Snapshot()
	for name, val := range snap {
		if val != 0 {
			t.Fatalf("after Reset, %s = %g, want 0", name, val)
		}
	}
}

// The ≤5%-overhead acceptance criterion rides on these two: the disabled
// path must be a branch, the enabled path a map read + atomic add.

func BenchmarkCounterVecDisabled(b *testing.B) {
	var r *Registry
	v := r.CounterVec("msgs")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Add("join", 1)
	}
}

func BenchmarkCounterVecEnabled(b *testing.B) {
	v := NewRegistry().CounterVec("msgs")
	v.Add("join", 1) // intern outside the loop timing? keep inside: steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Add("join", 1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("hops", 1, 2, 4, 8, 16, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 31))
	}
}
