package load

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"cqjoin/internal/engine"
	"cqjoin/internal/exp"
	"cqjoin/internal/obs"
	"cqjoin/internal/workload"
)

// SimSpec configures a simulator-backed load target.
type SimSpec struct {
	Scale     exp.Scale
	Algorithm engine.Algorithm
	// Theta is the Zipf exponent of the workload's attribute values; 0
	// keeps the workload default (0.9), negative draws uniformly.
	Theta float64
	// HotKeyThreshold arms adaptive hot-key sharding (SAI only); 0
	// leaves it off. HotKeyReplicas < 2 defaults to 4.
	HotKeyThreshold int
	HotKeyReplicas  int
}

// DefaultSimSpec is the canonical short sim-mode configuration shared by
// BenchmarkLoadOpenLoopSim, the committed baseline's cqload/sim entry and
// the CI load-smoke job; all three must measure the same workload for the
// benchdiff gate to mean anything.
func DefaultSimSpec() SimSpec {
	return SimSpec{
		Scale:     exp.Scale{Nodes: 64, Queries: 60, Seed: 1},
		Algorithm: engine.SAI,
	}
}

// SkewTheta is the Zipf exponent of the canonical skewed smoke runs: hot
// enough that the top-ranked value concentrates a clear hotspot, within
// the θ≈0.9–1.2 band the hot-key bench cell gates on.
const SkewTheta = 1.1

// SkewedSimSpec is the canonical skewed sim-mode smoke configuration:
// DefaultSimSpec's scale with Zipf θ=1.1 traffic and the hot-key sharding
// layer armed, so the CI skew smoke exercises promotion under open-loop
// load.
func SkewedSimSpec() SimSpec {
	spec := DefaultSimSpec()
	spec.Theta = SkewTheta
	spec.HotKeyThreshold = 16
	spec.HotKeyReplicas = 4
	return spec
}

// SimConfig is the canonical sim-mode open-loop load (see DefaultSimSpec).
// The rate sits well under the engine's single-process capacity (around
// 1800/s on a modest core), so latency quantiles measure the engine, not
// an arrival-queue backlog, and the CI rate-collapse gate has headroom on
// slower runners.
func SimConfig() Config { return Config{Rate: 1000, Duration: 2 * time.Second, Workers: 8} }

// ParseAlgorithm maps the protocol spelling of an indexing algorithm
// ("sai", "daiq", "dait", "daiv"; empty means SAI) to the engine enum,
// for CLI flags.
func ParseAlgorithm(name string) (engine.Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "sai":
		return engine.SAI, nil
	case "daiq", "dai-q":
		return engine.DAIQ, nil
	case "dait", "dai-t":
		return engine.DAIT, nil
	case "daiv", "dai-v":
		return engine.DAIV, nil
	default:
		return 0, fmt.Errorf("load: unknown algorithm %q", name)
	}
}

// SimTarget drives the in-process simulator engine. The engine's Publish
// is synchronous — notifications reach subscribers before it returns — so
// the measured latency is true end-to-end notification latency. Publish
// is not safe for uncoordinated concurrent callers (PublishBatch exists
// for that), so the target serializes publications behind a mutex: with
// an open-loop schedule the lock wait is queueing delay and lands in the
// latency samples, exactly where saturation should show up.
type SimTarget struct {
	run  *exp.Run
	spec SimSpec

	mu  sync.Mutex
	ops []engine.PublishOp
}

// NewSimTarget builds the overlay and engine for spec.
func NewSimTarget(spec SimSpec) *SimTarget {
	r := exp.Setup(engine.Config{
		Algorithm:       spec.Algorithm,
		HotKeyThreshold: spec.HotKeyThreshold,
		HotKeyReplicas:  spec.HotKeyReplicas,
	}, spec.Scale, workload.Params{Theta: spec.Theta})
	return &SimTarget{run: r, spec: spec}
}

// Prepare subscribes the spec's T1 queries and pre-draws the run's
// publication stream from the seeded workload generator.
func (t *SimTarget) Prepare(total, _ int) error {
	t.run.SubscribeT1(t.spec.Scale.Queries)
	rng := rand.New(rand.NewSource(t.spec.Scale.Seed + 101))
	t.ops = make([]engine.PublishOp, total)
	for i := range t.ops {
		t.ops[i] = engine.PublishOp{
			From: t.run.Nodes[rng.Intn(len(t.run.Nodes))],
			T:    t.run.Gen.Tuple(),
		}
	}
	t.run.ResetMeters()
	return nil
}

// Publish inserts the op-th pre-drawn tuple (serialized; see type doc).
func (t *SimTarget) Publish(_ int, op int) error {
	o := t.ops[op]
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:allow lockorder the simulator's Send is synchronous in-process delivery, and mu exists to serialize Publish
	_, err := t.run.Eng.Publish(o.From, o.T)
	return err
}

// Notifications counts deliveries since Prepare's ResetMeters.
func (t *SimTarget) Notifications() (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.run.Eng.Notifications()), nil
}

// HotKeys reports how many value-level inputs the engine currently holds
// promoted — non-zero only when the spec armed hot-key sharding and the
// workload actually skewed.
func (t *SimTarget) HotKeys() (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.run.Eng.HotKeys()), nil
}

// Close releases nothing: the simulator is garbage-collected state.
func (t *SimTarget) Close() error { return nil }

// ScaleInfo reports the spec's scale for manifest entries.
func (t *SimTarget) ScaleInfo(total int) obs.ScaleInfo {
	return obs.ScaleInfo{
		Nodes:   t.spec.Scale.Nodes,
		Queries: t.spec.Scale.Queries,
		Tuples:  total,
		Seed:    t.spec.Scale.Seed,
	}
}

var _ Target = (*SimTarget)(nil)
