package load

import (
	"testing"
	"time"

	"cqjoin/internal/engine"
	"cqjoin/internal/exp"
	"cqjoin/internal/obs"
)

func TestOpenLoopSim(t *testing.T) {
	tgt := NewSimTarget(SimSpec{
		Scale:     exp.Scale{Nodes: 32, Queries: 20, Seed: 1},
		Algorithm: engine.SAI,
	})
	defer tgt.Close()
	res, err := Run(tgt, Config{Rate: 500, Duration: 200 * time.Millisecond, Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Total < 1 || res.Published != res.Total {
		t.Fatalf("published %d of %d scheduled ops", res.Published, res.Total)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Notifications == 0 {
		t.Fatalf("no notifications delivered: the workload never matched")
	}
	if res.Achieved <= 0 {
		t.Fatalf("achieved rate %v", res.Achieved)
	}
	if res.P50 <= 0 {
		t.Fatalf("p50 %v: no latency samples recorded", res.P50)
	}
	if res.P50 > res.P999 && res.P999 >= 0 {
		t.Fatalf("p50 %v above p999 %v", res.P50, res.P999)
	}
}

func TestOpenLoopSelfHostedTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping TCP daemon pair")
	}
	tgt, err := NewSelfHostedTCP(TCPSpec{Nodes: 24, Procs: 2, Queries: 12, Algorithm: "sai", Seed: 1})
	if err != nil {
		t.Fatalf("NewSelfHostedTCP: %v", err)
	}
	defer tgt.Close()
	res, err := Run(tgt, Config{Rate: 200, Duration: 300 * time.Millisecond, Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Published != res.Total {
		t.Fatalf("published %d of %d scheduled ops (%d errors)", res.Published, res.Total, res.Errors)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Notifications == 0 {
		t.Fatalf("no notifications delivered across the daemon pair")
	}
}

func TestResultEntry(t *testing.T) {
	r := Result{
		Offered: 1000, Achieved: 990, Total: 2000, Published: 1990, Errors: 10,
		Notifications: 42, Elapsed: 2 * time.Second, P50: 100, P99: 900, P999: 5000,
	}
	e := r.Entry("cqload/sim", obs.ScaleInfo{Nodes: 64})
	if e.Metrics["errors"].Value != 10 || !e.Metrics["errors"].Deterministic {
		t.Fatalf("errors metric must be deterministic: %+v", e.Metrics["errors"])
	}
	if m := e.Metrics["achieved_per_sec"]; m.LowerIsBetter {
		t.Fatalf("achieved rate must be higher-is-better: %+v", m)
	}
	if m := e.Metrics["latency_p999_ns"]; m.Threshold != p999Threshold {
		t.Fatalf("p999 must carry its loose per-metric threshold: %+v", m)
	}
	if m := e.Metrics["latency_p99_ns"]; m.Threshold != 0 || m.Deterministic {
		t.Fatalf("p99 must be a plain noisy metric: %+v", m)
	}
	if got := r.AchievedRatio(); got != 0.99 {
		t.Fatalf("AchievedRatio = %v, want 0.99", got)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	tgt := NewSimTarget(DefaultSimSpec())
	if _, err := Run(tgt, Config{Rate: 0, Duration: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(tgt, Config{Rate: 100, Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
}
