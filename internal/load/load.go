// Package load is the open-loop load harness behind cmd/cqload and the
// CI load-smoke job. It drives publications at a fixed arrival rate —
// operation i is due at start + i/rate regardless of how long earlier
// operations took — and measures latency from that scheduled arrival
// time, not from when a worker got around to sending. A saturated target
// therefore shows up twice: the achieved rate collapses below the offered
// rate, and queueing delay inflates the latency tail. A closed-loop
// harness (send, wait, send) would hide both (coordinated omission).
//
// The harness is target-agnostic: SimTarget runs the in-process simulator
// engine, DaemonTarget speaks the cqjoind JSON line protocol over TCP.
// Both present the same deterministic pre-drawn operation stream, so a
// run is reproducible for a fixed (seed, rate, duration) triple up to
// scheduler noise in the latency samples.
package load

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cqjoin/internal/obs"
)

// latencyBuckets is the shared histogram geometry for all load runs: the
// 1-2-5 ladder from 10µs to 10s defined by obs.LatencyBounds.
var latencyBuckets = obs.LatencyBounds()

// Target is one system under load. Prepare installs the workload's
// continuous queries, pre-draws the `total` publications the run will
// issue (drawn sequentially from a seeded generator, so the operation
// stream is identical at any worker count) and allocates any per-worker
// resources such as connections; Publish issues the op-th publication on
// behalf of worker w (0 <= w < workers) and returns once the target has
// accepted it; Notifications reports the join notifications delivered
// since Prepare.
//
// Publish is called concurrently from Config.Workers goroutines; targets
// must either be concurrency-safe or serialize internally.
type Target interface {
	Prepare(total, workers int) error
	Publish(worker, op int) error
	Notifications() (int, error)
	Close() error
}

// Config sets the offered load.
type Config struct {
	// Rate is the offered arrival rate in publications per second.
	Rate float64
	// Duration is the length of the timed run; the total operation count
	// is Rate*Duration rounded down (minimum 1).
	Duration time.Duration
	// Workers is the number of concurrent publisher goroutines (default
	// 4). Workers bound concurrency, not rate: each claims the next
	// operation index atomically and sleeps until its scheduled arrival.
	Workers int
}

// Result is one finished load run.
type Result struct {
	// Offered is Config.Rate; Achieved is successful publications divided
	// by elapsed wall time. Achieved << Offered means the target (or the
	// worker pool) saturated.
	Offered  float64
	Achieved float64
	// Total is the number of scheduled operations, Published the number
	// that succeeded, Errors the number that failed.
	Total     int64
	Published int64
	Errors    int64
	// Notifications is the target's delivered-notification count over the
	// run — the proof that the workload actually exercised the join path.
	Notifications int
	// Elapsed is the wall time from first scheduled arrival to last
	// completion.
	Elapsed time.Duration
	// P50/P99/P999 are notification-latency quantiles in nanoseconds,
	// measured from each operation's scheduled arrival time to the
	// completion of its (synchronous) publication. -1 means the quantile
	// fell beyond the top histogram bucket (10s).
	P50, P99, P999 float64
}

// Run executes one open-loop run against t. Prepare must have been called
// by the caller if the target needs distinguishing setup; Run calls it
// itself for convenience.
func Run(t Target, cfg Config) (Result, error) {
	if cfg.Rate <= 0 {
		return Result{}, fmt.Errorf("load: rate must be positive, got %v", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("load: duration must be positive, got %v", cfg.Duration)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	total := int64(cfg.Rate * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	if err := t.Prepare(int(total), cfg.Workers); err != nil {
		return Result{}, fmt.Errorf("load: prepare: %w", err)
	}

	reg := obs.NewRegistry()
	hist := reg.Histogram("load.latency_ns", latencyBuckets...)
	interval := float64(time.Second) / cfg.Rate

	var (
		next      int64 // next unclaimed operation index
		published int64
		errs      int64
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= total {
					return
				}
				// Open-loop schedule: op i is due at start + i/rate. Sleep
				// until then; if we are already late the latency sample
				// absorbs the backlog instead of the schedule slipping.
				sched := start.Add(time.Duration(float64(i) * interval))
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				err := t.Publish(worker, int(i))
				hist.Observe(int64(time.Since(sched)))
				if err != nil {
					atomic.AddInt64(&errs, 1)
				} else {
					atomic.AddInt64(&published, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	notifs, err := t.Notifications()
	if err != nil {
		return Result{}, fmt.Errorf("load: notifications: %w", err)
	}
	snap := reg.Snapshot()
	res := Result{
		Offered:       cfg.Rate,
		Total:         total,
		Published:     published,
		Errors:        errs,
		Notifications: notifs,
		Elapsed:       elapsed,
		P50:           snap["load.latency_ns.p50"],
		P99:           snap["load.latency_ns.p99"],
		P999:          snap["load.latency_ns.p999"],
	}
	if elapsed > 0 {
		res.Achieved = float64(published) / elapsed.Seconds()
	}
	return res, nil
}

// AchievedRatio is achieved/offered — the CI load-smoke job fails when it
// drops below its -min-achieved-ratio flag (rate collapse).
func (r Result) AchievedRatio() float64 {
	if r.Offered <= 0 {
		return 0
	}
	return r.Achieved / r.Offered
}

// p999Threshold loosens the gate for the extreme tail: p999 on shared CI
// runners deserves a wider leash than the manifest-wide ±15%.
const p999Threshold = 0.50

// Entry renders the result as a manifest entry for BENCH_baseline.json
// and the load-smoke artifact. Latency and rate metrics are noisy
// (annotate-only under cmd/benchdiff's soft gate); the error count is
// deterministic and lower-is-better, so errors appearing against a zero
// baseline hard-fail the gate.
func (r Result) Entry(name string, sc obs.ScaleInfo) obs.Entry {
	return obs.Entry{
		Name:       name,
		Scale:      sc,
		Iterations: 1,
		WallNS:     int64(r.Elapsed),
		Metrics: map[string]obs.Metric{
			"offered_per_sec":  {Value: r.Offered, Unit: "msgs/s", Deterministic: true, LowerIsBetter: false},
			"achieved_per_sec": {Value: r.Achieved, Unit: "msgs/s", LowerIsBetter: false},
			"latency_p50_ns":   obs.Noisy(r.P50, "ns"),
			"latency_p99_ns":   obs.Noisy(r.P99, "ns"),
			"latency_p999_ns": {Value: r.P999, Unit: "ns", LowerIsBetter: true,
				Threshold: p999Threshold},
			"errors":        obs.Det(float64(r.Errors), "count"),
			"notifications": {Value: float64(r.Notifications), Unit: "count", LowerIsBetter: false},
		},
	}
}
