package load

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"cqjoin/internal/daemon"
	"cqjoin/internal/obs"
	"cqjoin/internal/workload"
)

// tcpSchemaDSL and tcpJoinSQL are the fixed workload of the TCP target:
// the two-relation equi-join the daemon tests use. Products are drawn
// from a small domain so publications actually produce join matches.
const (
	tcpSchemaDSL = "Orders(Id,Customer,Product);Shipments(Id,Product,Depot)"
	tcpJoinSQL   = `SELECT O.Customer, S.Depot FROM Orders AS O, Shipments AS S WHERE O.Product = S.Product`
	tcpDomain    = 25 // distinct product values
)

// TCPSpec configures a daemon-backed load target.
type TCPSpec struct {
	// Nodes is the overlay size; Procs the number of self-hosted daemon
	// processes sharing it (1 = single-process mode, no TCP transport
	// between ring positions).
	Nodes int
	Procs int
	// Queries is how many copies of the join query Prepare subscribes,
	// from nodes spread across the ring.
	Queries   int
	Algorithm string
	Seed      int64
	// Theta is the Zipf exponent of the product-value draw; 0 keeps the
	// uniform default. Skewed draws make one product a hot join key.
	Theta float64
	// HotKeyThreshold arms adaptive hot-key sharding in the self-hosted
	// daemons (SAI only); 0 leaves it off.
	HotKeyThreshold int
	HotKeyReplicas  int
}

// DefaultTCPSpec is the canonical short TCP-mode configuration shared by
// BenchmarkLoadOpenLoopTCP, the committed baseline's cqload/tcp entry and
// the CI load-smoke job.
func DefaultTCPSpec() TCPSpec {
	return TCPSpec{Nodes: 48, Procs: 2, Queries: 24, Algorithm: "sai", Seed: 1}
}

// SkewedTCPSpec is the canonical skewed TCP-mode smoke configuration:
// DefaultTCPSpec with Zipf θ=1.1 product draws and hot-key sharding armed
// in the self-hosted daemons. The threshold is calibrated for this
// workload's bump rate — each publication fans its grouped rewrites
// (spec.Queries copies of the join) into the matching value input — so
// only the top-ranked products promote within the canonical 2-second run.
func SkewedTCPSpec() TCPSpec {
	spec := DefaultTCPSpec()
	spec.Theta = SkewTheta
	spec.HotKeyThreshold = 64
	spec.HotKeyReplicas = 4
	return spec
}

// TCPConfig is the canonical TCP-mode open-loop load (see DefaultTCPSpec).
// Each operation is a JSON round trip to a daemon plus the overlay RPCs
// the publication fans out to, so the offered rate is far below sim's.
func TCPConfig() Config { return Config{Rate: 400, Duration: 2 * time.Second, Workers: 4} }

// pubOp is one pre-drawn publication of the TCP workload.
type pubOp struct {
	node     int
	relation string
	values   []interface{}
}

// DaemonTarget drives one or more cqjoind servers over the JSON line
// protocol. Self-hosted targets (NewSelfHostedTCP) spin up the daemons
// in-process around real TCP listeners — the full wire path without
// needing external processes; NewDaemonTarget points at an already
// running single daemon instead.
//
// Each worker gets its own connection to every server, so workers never
// share a socket and need no locks; operations are routed to the server
// hosting the publishing ring position (daemon ownership is enforced —
// a mis-routed op fails with "hosted by peer").
type DaemonTarget struct {
	spec    TCPSpec
	servers []*daemon.Server // nil entries when external
	addrs   []string
	owners  []int // ring position -> index into addrs

	ctrl      []*jsonClient   // one control connection per server
	conns     [][]*jsonClient // [worker][server]
	pubs      []pubOp
	baseNotif int
	// serveWG pairs the self-hosted daemons' Serve goroutines; Close
	// waits on it after closing the servers (which closes their protocol
	// listeners, so Serve returns).
	serveWG sync.WaitGroup
}

// NewSelfHostedTCP builds spec.Procs daemon processes sharing one
// overlay, exactly like a multi-process deployment but inside this
// process: pre-bound overlay listeners, a static peer list, and a
// protocol listener per daemon.
func NewSelfHostedTCP(spec TCPSpec) (*DaemonTarget, error) {
	if spec.Procs < 1 {
		spec.Procs = 1
	}
	t := &DaemonTarget{spec: spec}
	lns := make([]net.Listener, spec.Procs)
	peers := make([]string, spec.Procs)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("load: listen overlay %d: %w", i, err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	for i, ln := range lns {
		cfg := daemon.Config{
			Nodes:           spec.Nodes,
			Algorithm:       spec.Algorithm,
			SchemaDSL:       tcpSchemaDSL,
			Seed:            spec.Seed,
			HotKeyThreshold: spec.HotKeyThreshold,
			HotKeyReplicas:  spec.HotKeyReplicas,
		}
		if spec.Procs > 1 {
			cfg.OverlayAddr = peers[i]
			cfg.Peers = peers
		}
		srv, err := daemon.New(cfg)
		if err != nil {
			_ = ln.Close()
			t.Close()
			return nil, fmt.Errorf("load: daemon %d: %w", i, err)
		}
		if spec.Procs > 1 {
			if err := srv.StartOverlay(ln); err != nil {
				t.Close()
				return nil, fmt.Errorf("load: overlay %d: %w", i, err)
			}
		} else {
			_ = ln.Close()
		}
		cln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = srv.Close()
			t.Close()
			return nil, fmt.Errorf("load: listen protocol %d: %w", i, err)
		}
		t.serveWG.Add(1)
		go func() {
			defer t.serveWG.Done()
			_ = srv.Serve(cln)
		}()
		t.servers = append(t.servers, srv)
		t.addrs = append(t.addrs, cln.Addr().String())
	}
	// Ownership is successor-based over the hashed peer addresses;
	// resolve it once so every operation dials the right daemon.
	t.owners = make([]int, spec.Nodes)
	for n := 0; n < spec.Nodes; n++ {
		t.owners[n] = -1
		for j, srv := range t.servers {
			if srv.OwnsNode(n) {
				t.owners[n] = j
				break
			}
		}
		if t.owners[n] < 0 {
			t.Close()
			return nil, fmt.Errorf("load: ring position %d owned by no daemon", n)
		}
	}
	return t, nil
}

// NewDaemonTarget points the harness at one already-running daemon that
// hosts the whole ring (single-process mode). The daemon must have been
// started with the same schema as tcpSchemaDSL and at least spec.Nodes
// ring positions.
func NewDaemonTarget(addr string, spec TCPSpec) *DaemonTarget {
	t := &DaemonTarget{spec: spec, addrs: []string{addr}}
	t.owners = make([]int, spec.Nodes)
	return t
}

// Prepare subscribes the join queries, snapshots the servers' baseline
// notification counts and dials one connection per worker per server.
func (t *DaemonTarget) Prepare(total, workers int) error {
	t.ctrl = make([]*jsonClient, len(t.addrs))
	for j, addr := range t.addrs {
		c, err := dialClient(addr)
		if err != nil {
			return fmt.Errorf("load: dial %s: %w", addr, err)
		}
		t.ctrl[j] = c
	}

	rng := rand.New(rand.NewSource(t.spec.Seed + 211))
	for q := 0; q < t.spec.Queries; q++ {
		node := rng.Intn(t.spec.Nodes)
		resp, err := t.ctrl[t.owners[node]].call(map[string]interface{}{
			"op": "subscribe", "node": node, "sql": tcpJoinSQL,
		})
		if err != nil {
			return fmt.Errorf("load: subscribe on node %d: %w", node, err)
		}
		if resp["ok"] != true {
			return fmt.Errorf("load: subscribe on node %d: %v", node, resp["error"])
		}
	}

	// Pre-draw the publication stream: alternating Orders/Shipments rows
	// over a small shared product domain, so the streams join. A positive
	// Theta draws products Zipf-skewed (rank 1 = "p0" hottest); the
	// default stays the uniform stream the committed baseline measured.
	product := func() int { return rng.Intn(tcpDomain) }
	if t.spec.Theta > 0 {
		sk := workload.NewSkew(tcpDomain, t.spec.Theta)
		product = func() int { return sk.Sample(rng) - 1 }
	}
	t.pubs = make([]pubOp, total)
	for i := range t.pubs {
		prod := fmt.Sprintf("p%d", product())
		op := pubOp{node: rng.Intn(t.spec.Nodes)}
		if i%2 == 0 {
			op.relation = "Orders"
			op.values = []interface{}{i, fmt.Sprintf("c%d", rng.Intn(tcpDomain)), prod}
		} else {
			op.relation = "Shipments"
			op.values = []interface{}{i, prod, fmt.Sprintf("d%d", rng.Intn(tcpDomain))}
		}
		t.pubs[i] = op
	}

	base, err := t.notificationTotal()
	if err != nil {
		return err
	}
	t.baseNotif = base

	t.conns = make([][]*jsonClient, workers)
	for w := range t.conns {
		t.conns[w] = make([]*jsonClient, len(t.addrs))
		for j, addr := range t.addrs {
			c, err := dialClient(addr)
			if err != nil {
				return fmt.Errorf("load: dial %s for worker %d: %w", addr, w, err)
			}
			t.conns[w][j] = c
		}
	}
	return nil
}

// Publish sends the op-th pre-drawn publication on worker w's connection
// to the daemon hosting the publishing node.
func (t *DaemonTarget) Publish(worker, op int) error {
	o := t.pubs[op]
	c := t.conns[worker][t.owners[o.node]]
	resp, err := c.call(map[string]interface{}{
		"op": "publish", "node": o.node, "relation": o.relation, "values": o.values,
	})
	if err != nil {
		return err
	}
	if resp["ok"] != true {
		return fmt.Errorf("load: publish: %v", resp["error"])
	}
	return nil
}

// Notifications sums each server's delivered count over the run. In
// multi-process mode a notification is recorded by the process hosting
// the subscriber's ring position, so the per-server counts partition the
// total.
func (t *DaemonTarget) Notifications() (int, error) {
	total, err := t.notificationTotal()
	if err != nil {
		return 0, err
	}
	return total - t.baseNotif, nil
}

func (t *DaemonTarget) notificationTotal() (int, error) {
	total := 0
	for j, c := range t.ctrl {
		resp, err := c.call(map[string]interface{}{"op": "stats"})
		if err != nil {
			return 0, fmt.Errorf("load: stats from %s: %w", t.addrs[j], err)
		}
		n, ok := resp["notifications"].(float64)
		if !ok {
			return 0, fmt.Errorf("load: stats from %s: no notification count in %v", t.addrs[j], resp)
		}
		total += int(n)
	}
	return total, nil
}

// HotKeys sums the promoted-input counts across the daemons' stats. Each
// promoted input is registered on every process that handled one of its
// frames, so the sum can over-count in multi-process mode; it still
// answers the smoke question — did anything promote at all.
func (t *DaemonTarget) HotKeys() (int, error) {
	total := 0
	for j, c := range t.ctrl {
		resp, err := c.call(map[string]interface{}{"op": "stats"})
		if err != nil {
			return 0, fmt.Errorf("load: stats from %s: %w", t.addrs[j], err)
		}
		if n, ok := resp["hot_keys"].(float64); ok {
			total += int(n)
		}
	}
	return total, nil
}

// Close tears down connections and any self-hosted servers.
func (t *DaemonTarget) Close() error {
	for _, c := range t.ctrl {
		if c != nil {
			_ = c.close()
		}
	}
	for _, ws := range t.conns {
		for _, c := range ws {
			if c != nil {
				_ = c.close()
			}
		}
	}
	for _, srv := range t.servers {
		if srv != nil {
			_ = srv.Close()
		}
	}
	t.serveWG.Wait()
	return nil
}

// ScaleInfo reports the spec's scale for manifest entries.
func (t *DaemonTarget) ScaleInfo(total int) obs.ScaleInfo {
	return obs.ScaleInfo{
		Nodes:   t.spec.Nodes,
		Queries: t.spec.Queries,
		Tuples:  total,
		Seed:    t.spec.Seed,
	}
}

var _ Target = (*DaemonTarget)(nil)

// jsonClient is one connection speaking the daemon's JSON line protocol.
// Not safe for concurrent use; the harness gives every worker its own.
type jsonClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialClient(addr string) (*jsonClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &jsonClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

// call sends one request and returns its response. The harness never
// issues "listen", so no asynchronous event lines interleave; any that
// do arrive (future protocol versions) are skipped.
func (c *jsonClient) call(req map[string]interface{}) (map[string]interface{}, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := c.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		return nil, err
	}
	for {
		if err := c.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
			return nil, err
		}
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		var resp map[string]interface{}
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			return nil, fmt.Errorf("bad response %q: %w", line, err)
		}
		if _, isEvent := resp["event"]; isEvent {
			continue
		}
		return resp, nil
	}
}

func (c *jsonClient) close() error { return c.conn.Close() }
