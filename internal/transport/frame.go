package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"cqjoin/internal/wire"
)

// The wire protocol between peers is a sequence of frames, each a 4-byte
// big-endian length followed by a payload encoded with internal/wire
// primitives:
//
//	frame   := len:uint32be payload                (len counts payload only)
//	payload := ftype:uvarint rest
//	hello   := HELLO version:uvarint self:string   (first frame each way)
//	helloOK := HELLO_OK version:uvarint
//	batch   := BATCH seq:uvarint count:uvarint
//	           { dstKey:string msg:string } * count (msg = engine codec bytes)
//	ack     := ACK seq:uvarint status:string       (one status byte per msg)
//	join    := JOIN seq:uvarint addr:string        (request to enter the overlay)
//	view    := VIEW seq:uvarint memberView         (membership gossip; see wire.MemberView)
//	viewAck := VIEW_ACK seq:uvarint version:uvarint (receiver's view version after apply)
//
// A connection is a pipelined RPC channel: a sender may have up to
// Config.MaxInflight requests outstanding on one connection at a time.
// Every request after the hello handshake carries a connection-scoped
// seq, and every reply echoes it: seq IS the demultiplexer. The server
// processes pipelined frames concurrently and writes each reply as its
// handler finishes — completion order, not arrival order. Both are
// forced by nested RPCs: two peers whose handlers synchronously call
// back into each other would deadlock if a blocked frame stopped later
// frames from being read, and equally if its unfinished reply held
// finished ones hostage in an in-order writer (the nested call's ack
// would queue behind the very reply awaiting it). Acks carry one byte
// per message; ackOK means the destination's handler ran before the ack
// was sent — the same synchronous-ack contract the simulated transport
// provides.
//
// Membership frames follow the same request/reply discipline: JOIN is
// answered with a VIEW (the authoritative post-join membership), VIEW with
// a VIEW_ACK. Both are idempotent — views are versioned and a receiver
// only adopts strictly newer ones — so the sender's retry loop can replay
// them safely.
const (
	protoVersion = 2

	// maxFrame bounds one frame so a corrupt length prefix cannot allocate
	// gigabytes. 16 MiB fits any realistic multisend leg (the simulator's
	// message sizes are hundreds of bytes); DeliverBatch splits larger runs
	// across multiple frames.
	maxFrame = 16 << 20

	frameHello   = 1
	frameHelloOK = 2
	frameBatch   = 3
	frameAck     = 4
	frameJoin    = 5
	frameView    = 6
	frameViewAck = 7

	ackOK   byte = 1
	ackFail byte = 0

	// frameHeaderLen is the length prefix reserved at the front of a
	// framed buffer and patched by finishFrame.
	frameHeaderLen = 4

	// maxBatchBody is where DeliverBatch cuts a run of entries into a new
	// frame. A chunk may exceed it by one entry, so it sits far enough
	// under maxFrame that any realistic message (the engine's are at most
	// a few KiB) still fits.
	maxBatchBody = 4 << 20
)

// frameBufPool recycles encode scratch across RPCs and server replies. A
// buffer taken from the pool keeps whatever capacity its last use grew it
// to, so steady-state encoding allocates nothing.
var frameBufPool = sync.Pool{New: func() interface{} { return new(wire.Buffer) }}

// getBuf returns an empty pooled scratch buffer (no header reservation);
// DeliverBatch accumulates batch entries in one.
func getBuf() *wire.Buffer {
	w := frameBufPool.Get().(*wire.Buffer)
	w.Reset()
	return w
}

// putBuf returns a scratch buffer to the pool. The caller must not retain
// any slice aliasing it afterwards.
func putBuf(w *wire.Buffer) { frameBufPool.Put(w) }

// beginFrame resets w and reserves the 4-byte frame header; build the
// payload after it and call finishFrame.
func beginFrame(w *wire.Buffer) {
	w.Reset()
	var hdr [frameHeaderLen]byte
	w.PutRaw(hdr[:])
}

// getFrameBuf returns an empty pooled buffer with the frame header
// already reserved; it delegates to getBuf so the pool has one accessor
// pair.
func getFrameBuf() *wire.Buffer {
	w := getBuf()
	beginFrame(w)
	return w
}

// putFrameBuf returns a framed scratch buffer to the pool.
func putFrameBuf(w *wire.Buffer) { putBuf(w) }

// finishFrame patches the reserved header with the payload length and
// returns the complete frame (header + payload), ready for one Write.
func finishFrame(w *wire.Buffer) ([]byte, error) {
	frame := w.Bytes()
	n := len(frame) - frameHeaderLen
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	binary.BigEndian.PutUint32(frame[:frameHeaderLen], uint32(n))
	return frame, nil
}

// writeFrame sends one length-prefixed frame in a single Write call.
func writeFrame(c net.Conn, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	w := getFrameBuf()
	defer putFrameBuf(w)
	w.PutRaw(payload)
	frame, err := finishFrame(w)
	if err != nil {
		return err
	}
	_, err = c.Write(frame)
	return err
}

// readFrame reads one length-prefixed frame, rejecting oversized lengths
// before allocating. The payload is freshly allocated; use readFrameReuse
// on high-volume paths.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var buf []byte
	return readFrameReuse(br, &buf)
}

// readFrameReuse reads one frame into *buf, growing it only when a payload
// exceeds every previous one on this connection. The returned slice
// aliases *buf and is valid until the next call.
func readFrameReuse(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// encodeHello builds the client's opening frame payload.
func encodeHello(self string) []byte {
	var w wire.Buffer
	w.PutUvarint(frameHello)
	w.PutUvarint(protoVersion)
	w.PutString(self)
	return w.Bytes()
}

// helloOKInto appends the server's hello acknowledgement payload.
func helloOKInto(w *wire.Buffer) {
	w.PutUvarint(frameHelloOK)
	w.PutUvarint(protoVersion)
}

// batchHeaderInto appends the batch payload prefix (ftype, seq, count);
// the pre-encoded entries follow it verbatim.
func batchHeaderInto(w *wire.Buffer, seq uint64, count int) {
	w.PutUvarint(frameBatch)
	w.PutUvarint(seq)
	w.PutUvarint(uint64(count))
}

// appendBatchEntry appends one {dstKey, msg} entry to a batch body being
// accumulated in w, where msg is already in codec form.
func appendBatchEntry(w *wire.Buffer, dstKey string, msg []byte) {
	w.PutString(dstKey)
	w.PutBytes(msg)
}

// ackInto appends the ack payload for a batch: the echoed seq plus one
// status byte per message, in batch order.
func ackInto(w *wire.Buffer, seq uint64, statuses []byte) {
	w.PutUvarint(frameAck)
	w.PutUvarint(seq)
	w.PutBytes(statuses)
}

// encodeAck builds a standalone ack payload (tests and docs; the server
// reply path uses ackInto on a reused buffer).
func encodeAck(seq uint64, statuses []byte) []byte {
	var w wire.Buffer
	ackInto(&w, seq, statuses)
	return w.Bytes()
}

// joinInto appends a join request carrying the joiner's advertised
// overlay address.
func joinInto(w *wire.Buffer, seq uint64, addr string) {
	w.PutUvarint(frameJoin)
	w.PutUvarint(seq)
	w.PutString(addr)
}

// encodeJoin builds a standalone join request (tests).
func encodeJoin(seq uint64, addr string) []byte {
	var w wire.Buffer
	joinInto(&w, seq, addr)
	return w.Bytes()
}

// viewInto appends a membership gossip payload. As a request seq is the
// sender's; as the reply to a join it echoes the join's seq.
func viewInto(w *wire.Buffer, seq uint64, v *wire.MemberView) {
	w.PutUvarint(frameView)
	w.PutUvarint(seq)
	wire.EncodeMemberView(w, v)
}

// encodeView builds a standalone membership gossip payload (tests).
func encodeView(seq uint64, v *wire.MemberView) []byte {
	var w wire.Buffer
	viewInto(&w, seq, v)
	return w.Bytes()
}

// viewAckInto appends the reply to a view frame: the echoed seq plus the
// receiver's view version after applying (or ignoring) the gossip.
func viewAckInto(w *wire.Buffer, seq, version uint64) {
	w.PutUvarint(frameViewAck)
	w.PutUvarint(seq)
	w.PutUvarint(version)
}

// encodeViewAck builds a standalone view ack (tests).
func encodeViewAck(seq, version uint64) []byte {
	var w wire.Buffer
	viewAckInto(&w, seq, version)
	return w.Bytes()
}

// replySeq extracts the demux seq from a reply frame without consuming
// the payload: every reply type a client read loop can see (ack, view,
// viewAck) carries it directly after the frame type.
func replySeq(payload []byte) (uint64, error) {
	r := wire.NewReader(payload)
	ftype, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	switch ftype {
	case frameAck, frameView, frameViewAck:
		return r.Uvarint()
	default:
		return 0, fmt.Errorf("transport: reply frame type %d carries no seq", ftype)
	}
}

// decodeAck parses an ack frame (sans the already-consumed ftype) and
// validates it against the batch it answers. The returned statuses alias
// the reader's backing bytes.
func decodeAck(r *wire.Reader, wantSeq uint64, wantCount int) ([]byte, error) {
	seq, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if seq != wantSeq {
		return nil, fmt.Errorf("transport: ack for seq %d, want %d", seq, wantSeq)
	}
	statuses, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	if len(statuses) != wantCount {
		return nil, fmt.Errorf("transport: ack carries %d statuses, want %d", len(statuses), wantCount)
	}
	return statuses, nil
}
