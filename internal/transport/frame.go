package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"cqjoin/internal/wire"
)

// The wire protocol between peers is a sequence of frames, each a 4-byte
// big-endian length followed by a payload encoded with internal/wire
// primitives:
//
//	frame   := len:uint32be payload                (len counts payload only)
//	payload := ftype:uvarint rest
//	hello   := HELLO version:uvarint self:string   (first frame each way)
//	helloOK := HELLO_OK version:uvarint
//	batch   := BATCH seq:uvarint count:uvarint
//	           { dstKey:string msg:string } * count (msg = engine codec bytes)
//	ack     := ACK seq:uvarint status:string       (one status byte per msg)
//	join    := JOIN addr:string                    (request to enter the overlay)
//	view    := VIEW memberView                     (membership gossip; see wire.MemberView)
//	viewAck := VIEW_ACK version:uvarint            (receiver's view version after apply)
//
// A connection is an RPC channel used by exactly one in-flight batch at a
// time: the sender writes a batch and blocks for its ack, so seq matching
// is a sanity check, not a demultiplexer. Acks carry one byte per message;
// ackOK means the destination's handler ran before the ack was sent — the
// same synchronous-ack contract the simulated transport provides.
//
// Membership frames follow the same request/reply discipline: JOIN is
// answered with a VIEW (the authoritative post-join membership), VIEW with
// a VIEW_ACK. Both are idempotent — views are versioned and a receiver
// only adopts strictly newer ones — so the sender's retry loop can replay
// them safely.
const (
	protoVersion = 1

	// maxFrame bounds one frame so a corrupt length prefix cannot allocate
	// gigabytes. 16 MiB fits any realistic multisend leg (the simulator's
	// message sizes are hundreds of bytes).
	maxFrame = 16 << 20

	frameHello   = 1
	frameHelloOK = 2
	frameBatch   = 3
	frameAck     = 4
	frameJoin    = 5
	frameView    = 6
	frameViewAck = 7

	ackOK   byte = 1
	ackFail byte = 0
)

// writeFrame sends one length-prefixed frame in a single Write call.
func writeFrame(c net.Conn, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	_, err := c.Write(out)
	return err
}

// readFrame reads one length-prefixed frame, rejecting oversized lengths
// before allocating.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// encodeHello builds the client's opening frame.
func encodeHello(self string) []byte {
	var w wire.Buffer
	w.PutUvarint(frameHello)
	w.PutUvarint(protoVersion)
	w.PutString(self)
	return w.Bytes()
}

// encodeHelloOK builds the server's hello acknowledgement.
func encodeHelloOK() []byte {
	var w wire.Buffer
	w.PutUvarint(frameHelloOK)
	w.PutUvarint(protoVersion)
	return w.Bytes()
}

// encodeBatch builds a batch frame from pre-encoded message payloads, one
// destination key per message.
func encodeBatch(seq uint64, dstKeys []string, msgs [][]byte) []byte {
	var w wire.Buffer
	w.PutUvarint(frameBatch)
	w.PutUvarint(seq)
	w.PutUvarint(uint64(len(dstKeys)))
	for i := range dstKeys {
		w.PutString(dstKeys[i])
		w.PutString(string(msgs[i]))
	}
	return w.Bytes()
}

// encodeAck builds the ack for a batch: the echoed seq plus one status
// byte per message, in batch order.
func encodeAck(seq uint64, statuses []byte) []byte {
	var w wire.Buffer
	w.PutUvarint(frameAck)
	w.PutUvarint(seq)
	w.PutString(string(statuses))
	return w.Bytes()
}

// encodeJoin builds a join request carrying the joiner's advertised
// overlay address.
func encodeJoin(addr string) []byte {
	var w wire.Buffer
	w.PutUvarint(frameJoin)
	w.PutString(addr)
	return w.Bytes()
}

// encodeView builds a membership gossip frame.
func encodeView(v *wire.MemberView) []byte {
	var w wire.Buffer
	w.PutUvarint(frameView)
	wire.EncodeMemberView(&w, v)
	return w.Bytes()
}

// encodeViewAck builds the reply to a view frame: the receiver's view
// version after applying (or ignoring) the gossip.
func encodeViewAck(version uint64) []byte {
	var w wire.Buffer
	w.PutUvarint(frameViewAck)
	w.PutUvarint(version)
	return w.Bytes()
}

// decodeAck parses an ack frame (sans the already-consumed ftype) and
// validates it against the batch it answers.
func decodeAck(r *wire.Reader, wantSeq uint64, wantCount int) ([]byte, error) {
	seq, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if seq != wantSeq {
		return nil, fmt.Errorf("transport: ack for seq %d, want %d", seq, wantSeq)
	}
	statuses, err := r.String()
	if err != nil {
		return nil, err
	}
	if len(statuses) != wantCount {
		return nil, fmt.Errorf("transport: ack carries %d statuses, want %d", len(statuses), wantCount)
	}
	return []byte(statuses), nil
}
