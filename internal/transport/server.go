package transport

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cqjoin/internal/wire"
)

// acceptLoop serves peer connections until the listener closes.
func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.serverConns[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.handleConn(c)
	}
}

// serveState is the scratch for processing one inbound frame: the frame
// read buffer, the reply buffer (header reserved by beginFrame each
// frame), the ack status array, wire readers for the frame and for
// message bodies, and an intern table for destination keys. States are
// recycled through a sync.Pool across frames and connections, so
// steady-state traffic allocates only what the codec's Decode must.
type serveState struct {
	readBuf  []byte
	reply    wire.Buffer
	statuses []byte
	rd       wire.Reader // frame fields
	msgRd    wire.Reader // message bodies (zero-copy views of readBuf)
	keys     map[string]string
}

var serveStatePool = sync.Pool{New: func() interface{} { return new(serveState) }}

// getServeState takes a frame-processing scratch from the pool.
func getServeState() *serveState { return serveStatePool.Get().(*serveState) }

// putServeState recycles a frame-processing scratch. readBuf, reply,
// statuses and keys are capacity caches deliberately retained across
// frames; the wire readers are Reset before each reuse.
func putServeState(st *serveState) { serveStatePool.Put(st) }

// serveQueueDepth bounds how many pipelined frames one connection may
// have in flight server-side. Beyond it the reader stops reading — the
// backpressure a pipelining sender sees as a slow ack.
const serveQueueDepth = 64

// handleConn answers frames from one peer connection: hello with helloOK,
// batches with acks, join/view with view/viewAck. Messages are decoded
// and handed to the local deliverer before the ack goes out, preserving
// the synchronous-ack contract end to end.
//
// Pipelined frames are processed concurrently (one goroutine per frame,
// at most serveQueueDepth in flight) and each handler writes its own
// reply the moment it finishes, in completion order, not arrival order.
// Both halves matter: a handler blocking on a nested RPC — proc A's
// batch handler delivering into an engine that synchronously calls back
// to proc B, whose handler does the same toward A — must neither stop
// later frames on this connection from being read nor hold their
// finished replies hostage. In-order replies deadlock such mutual
// traffic: the nested call's ack would queue behind the very reply that
// is waiting on it. Senders demultiplex replies by the echoed seq, so no
// ordering is owed.
func (t *TCP) handleConn(c net.Conn) {
	defer t.wg.Done()
	cs := &connServer{t: t, c: c, sem: make(chan struct{}, serveQueueDepth)}
	defer func() {
		cs.handlers.Wait()
		t.mu.Lock()
		delete(t.serverConns, c)
		t.mu.Unlock()
		_ = c.Close()
	}()

	br := bufio.NewReader(c)
	for {
		st := getServeState()
		payload, err := readFrameReuse(br, &st.readBuf)
		if err != nil {
			putServeState(st)
			if !errors.Is(err, io.EOF) && !cs.dead.Load() && !t.isClosed() {
				t.cfg.Logf("transport: read from %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		t.obs.framesIn.Inc()
		t.obs.frameBytesIn.Add(int64(len(payload)))
		cs.sem <- struct{}{}
		cs.handlers.Add(1)
		// A method with plain arguments, not a closure: the spawn copies
		// st and payload to the new goroutine without a per-frame
		// allocation.
		go cs.serveFrame(st, payload)
	}
}

// connServer is the shared state of one server-side connection's
// concurrent frame handlers: the write lock replies serialize on, the
// dead flag the first fatal error sets (so later handlers fail quietly),
// and the semaphore/WaitGroup bounding and draining the handlers.
type connServer struct {
	t        *TCP
	c        net.Conn
	wmu      sync.Mutex
	dead     atomic.Bool
	sem      chan struct{}
	handlers sync.WaitGroup
}

// serveFrame handles one inbound frame and writes its reply (if any)
// under the connection's write lock. The first fatal condition — bad
// frame, oversized reply, failed write — marks the connection dead and
// closes it.
func (cs *connServer) serveFrame(st *serveState, payload []byte) {
	defer func() {
		putServeState(st)
		<-cs.sem
		cs.handlers.Done()
	}()
	t := cs.t
	beginFrame(&st.reply)
	hasReply, err := t.handleFrameInto(st, payload)
	if err != nil {
		if cs.dead.CompareAndSwap(false, true) {
			t.cfg.Logf("transport: bad frame from %s: %v", cs.c.RemoteAddr(), err)
		}
		_ = cs.c.Close()
		return
	}
	if !hasReply {
		return
	}
	frame, err := finishFrame(&st.reply)
	if err != nil {
		if cs.dead.CompareAndSwap(false, true) {
			t.cfg.Logf("transport: reply to %s: %v", cs.c.RemoteAddr(), err)
		}
		_ = cs.c.Close()
		return
	}
	cs.wmu.Lock()
	_ = cs.c.SetWriteDeadline(time.Now().Add(t.cfg.IOTimeout))
	_, werr := cs.c.Write(frame)
	_ = cs.c.SetWriteDeadline(time.Time{})
	cs.wmu.Unlock()
	if werr != nil {
		if cs.dead.CompareAndSwap(false, true) && !t.isClosed() {
			t.cfg.Logf("transport: write to %s: %v", cs.c.RemoteAddr(), werr)
		}
		_ = cs.c.Close()
		return
	}
	t.obs.framesOut.Inc()
	t.obs.frameBytesOut.Add(int64(len(frame) - frameHeaderLen))
}

// handleFrameInto processes one inbound frame, building any reply in
// st.reply (after its reserved header), and reports whether there is one.
// An error tears the connection down.
func (t *TCP) handleFrameInto(st *serveState, payload []byte) (bool, error) {
	r := &st.rd
	r.Reset(payload)
	ftype, err := r.Uvarint()
	if err != nil {
		return false, err
	}
	switch ftype {
	case frameHello:
		if _, err := r.Uvarint(); err != nil { // version; any is answered with ours
			return false, err
		}
		helloOKInto(&st.reply)
		return true, nil
	case frameBatch:
		return true, t.handleBatchInto(st, r)
	case frameJoin:
		seq, err := r.Uvarint()
		if err != nil {
			return false, err
		}
		addr, err := r.String()
		if err != nil {
			return false, err
		}
		if t.cfg.Membership == nil {
			return false, errors.New("transport: membership frames not enabled")
		}
		v, err := t.cfg.Membership.HandleJoin(addr)
		if err != nil {
			return false, err
		}
		viewInto(&st.reply, seq, v)
		return true, nil
	case frameView:
		seq, err := r.Uvarint()
		if err != nil {
			return false, err
		}
		v, err := wire.DecodeMemberView(r)
		if err != nil {
			return false, err
		}
		if t.cfg.Membership == nil {
			return false, errors.New("transport: membership frames not enabled")
		}
		viewAckInto(&st.reply, seq, t.cfg.Membership.HandleView(v))
		return true, nil
	default:
		return false, errors.New("transport: unknown frame type")
	}
}

// handleFrame processes one standalone frame and returns the reply
// payload (or nil for none). Production connections run handleFrameInto
// over per-connection scratch; this wrapper serves tests and the fuzz
// harness.
func (t *TCP) handleFrame(payload []byte) ([]byte, error) {
	st := &serveState{}
	beginFrame(&st.reply)
	hasReply, err := t.handleFrameInto(st, payload)
	if err != nil || !hasReply {
		return nil, err
	}
	return append([]byte(nil), st.reply.Bytes()[frameHeaderLen:]...), nil
}

// handleBatchInto decodes and delivers each message of a batch frame in
// order, appending the ack to st.reply. A message that fails to decode
// gets ackFail without killing the rest of the batch: the sender's retry
// will re-offer it, and the engine's dedup makes the repeats harmless.
// Message bodies are decoded from zero-copy views of the read buffer, and
// destination keys interned so steady-state traffic allocates no strings.
func (t *TCP) handleBatchInto(st *serveState, r *wire.Reader) error {
	seq, err := r.Uvarint()
	if err != nil {
		return err
	}
	count, err := r.Uvarint()
	if err != nil {
		return err
	}
	if count > uint64(r.Remaining()) {
		// Every entry occupies at least one byte; a larger count is a
		// forged prefix, not a short read.
		return errors.New("transport: implausible batch count")
	}
	if uint64(cap(st.statuses)) < count {
		st.statuses = make([]byte, count)
	}
	statuses := st.statuses[:count]
	for i := range statuses {
		keyBytes, err := r.Bytes()
		if err != nil {
			return err
		}
		dstKey, ok := st.keys[string(keyBytes)] // no alloc on hit
		if !ok {
			dstKey = string(keyBytes)
			if st.keys == nil {
				st.keys = make(map[string]string)
			}
			st.keys[dstKey] = dstKey
		}
		body, err := r.Bytes()
		if err != nil {
			return err
		}
		st.msgRd.Reset(body)
		msg, err := t.cfg.Codec.Decode(&st.msgRd)
		if err != nil {
			t.obs.decodeErrors.Inc()
			t.cfg.Logf("transport: decode message for %s: %v", dstKey, err)
			statuses[i] = ackFail
			continue
		}
		if t.cfg.Local.DeliverLocal(dstKey, msg) {
			statuses[i] = ackOK
		} else {
			statuses[i] = ackFail
		}
	}
	ackInto(&st.reply, seq, statuses)
	return nil
}

// reapLoop closes idle pooled connections past their idle timeout.
func (t *TCP) reapLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.IdleTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
			t.pool.reap(time.Now().Add(-t.cfg.IdleTimeout))
			t.obs.idleConns.Set(int64(t.pool.idleCount()))
		}
	}
}
