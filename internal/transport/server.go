package transport

import (
	"bufio"
	"errors"
	"io"
	"net"
	"time"

	"cqjoin/internal/wire"
)

// acceptLoop serves peer connections until the listener closes.
func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.serverConns[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.handleConn(c)
	}
}

// handleConn answers frames from one peer connection: hello with helloOK,
// batches with acks. Messages are decoded and handed to the local
// deliverer before the ack goes out, preserving the synchronous-ack
// contract end to end. Processing is sequential per connection — the
// sender holds a connection exclusively per RPC — but nested sends
// triggered by handlers arrive on other connections served by their own
// goroutines, so reentrant traffic cannot deadlock.
func (t *TCP) handleConn(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.serverConns, c)
		t.mu.Unlock()
		_ = c.Close()
	}()
	br := bufio.NewReader(c)
	for {
		payload, err := readFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !t.isClosed() {
				t.cfg.Logf("transport: read from %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		t.obs.framesIn.Inc()
		t.obs.frameBytesIn.Add(int64(len(payload)))
		reply, err := t.handleFrame(payload)
		if err != nil {
			t.cfg.Logf("transport: bad frame from %s: %v", c.RemoteAddr(), err)
			return
		}
		if reply == nil {
			continue
		}
		_ = c.SetWriteDeadline(time.Now().Add(t.cfg.IOTimeout))
		err = t.writeFrameCounted(c, reply)
		_ = c.SetWriteDeadline(time.Time{})
		if err != nil {
			if !t.isClosed() {
				t.cfg.Logf("transport: write to %s: %v", c.RemoteAddr(), err)
			}
			return
		}
	}
}

// handleFrame processes one inbound frame and returns the reply frame (or
// nil for none). An error tears the connection down.
func (t *TCP) handleFrame(payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	ftype, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	switch ftype {
	case frameHello:
		if _, err := r.Uvarint(); err != nil { // version; any is answered with ours
			return nil, err
		}
		return encodeHelloOK(), nil
	case frameBatch:
		return t.handleBatch(r)
	case frameJoin:
		addr, err := r.String()
		if err != nil {
			return nil, err
		}
		if t.cfg.Membership == nil {
			return nil, errors.New("transport: membership frames not enabled")
		}
		v, err := t.cfg.Membership.HandleJoin(addr)
		if err != nil {
			return nil, err
		}
		return encodeView(v), nil
	case frameView:
		v, err := wire.DecodeMemberView(r)
		if err != nil {
			return nil, err
		}
		if t.cfg.Membership == nil {
			return nil, errors.New("transport: membership frames not enabled")
		}
		return encodeViewAck(t.cfg.Membership.HandleView(v)), nil
	default:
		return nil, errors.New("transport: unknown frame type")
	}
}

// handleBatch decodes and delivers each message of a batch frame in
// order, returning the ack. A message that fails to decode gets ackFail
// without killing the rest of the batch: the sender's retry will re-offer
// it, and the engine's dedup makes the repeats harmless.
func (t *TCP) handleBatch(r *wire.Reader) ([]byte, error) {
	seq, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	count, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(r.Remaining()) {
		// Every entry occupies at least one byte; a larger count is a
		// forged prefix, not a short read.
		return nil, errors.New("transport: implausible batch count")
	}
	statuses := make([]byte, count)
	for i := range statuses {
		dstKey, err := r.String()
		if err != nil {
			return nil, err
		}
		body, err := r.String()
		if err != nil {
			return nil, err
		}
		msg, err := t.cfg.Codec.Decode(wire.NewReader([]byte(body)))
		if err != nil {
			t.obs.decodeErrors.Inc()
			t.cfg.Logf("transport: decode message for %s: %v", dstKey, err)
			statuses[i] = ackFail
			continue
		}
		if t.cfg.Local.DeliverLocal(dstKey, msg) {
			statuses[i] = ackOK
		} else {
			statuses[i] = ackFail
		}
	}
	return encodeAck(seq, statuses), nil
}

// reapLoop closes idle pooled connections past their idle timeout.
func (t *TCP) reapLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.IdleTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
			t.pool.reap(time.Now().Add(-t.cfg.IdleTimeout))
			t.obs.idleConns.Set(int64(t.pool.idleCount()))
		}
	}
}
