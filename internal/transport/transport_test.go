package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cqjoin/internal/chord"
	"cqjoin/internal/obs"
	"cqjoin/internal/wire"
)

// testMsg is a minimal chord message for exercising the transport without
// the engine's codecs.
type testMsg struct{ Body string }

func (m *testMsg) Kind() string { return "test" }

type testCodec struct{}

func (testCodec) Encode(w *wire.Buffer, msg chord.Message) error {
	tm, ok := msg.(*testMsg)
	if !ok {
		return fmt.Errorf("testCodec: unexpected %T", msg)
	}
	w.PutString(tm.Body)
	return nil
}

func (testCodec) Decode(r *wire.Reader) (chord.Message, error) {
	s, err := r.String()
	if err != nil {
		return nil, err
	}
	return &testMsg{Body: s}, nil
}

// testLocal records deliveries as "dstKey:body" strings.
type testLocal struct {
	mu   sync.Mutex
	got  []string
	fail bool
}

func (l *testLocal) DeliverLocal(dstKey string, msg chord.Message) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fail {
		return false
	}
	l.got = append(l.got, dstKey+":"+msg.(*testMsg).Body)
	return true
}

func (l *testLocal) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.got...)
}

// testNodes builds a two-node overlay purely to have *chord.Node values
// carrying keys peer0 and peer1.
func testNodes(t *testing.T) (*chord.Node, *chord.Node) {
	t.Helper()
	nw := chord.New(chord.Config{})
	nodes := nw.AddNodes("peer", 2)
	if len(nodes) != 2 {
		t.Fatalf("AddNodes gave %d nodes, want 2", len(nodes))
	}
	return nodes[0], nodes[1]
}

// startTransport builds a TCP transport serving on a fresh loopback
// listener and returns it with its bound address.
func startTransport(t *testing.T, cfg Config) (*TCP, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if cfg.Self == "" {
		cfg.Self = ln.Addr().String()
	}
	if cfg.Codec == nil {
		cfg.Codec = testCodec{}
	}
	if cfg.OwnerOf == nil {
		// Receiver-side transports in these tests never send.
		cfg.OwnerOf = func(string) string { return "" }
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tr.Start(ln)
	t.Cleanup(func() { _ = tr.Close() })
	return tr, ln.Addr().String()
}

func TestDeliverAcrossTCP(t *testing.T) {
	from, dst := testNodes(t)
	remote := &testLocal{}
	regB := obs.NewRegistry()
	_, addrB := startTransport(t, Config{Local: remote, Obs: regB})

	regA := obs.NewRegistry()
	localA := &testLocal{}
	trA, _ := startTransport(t, Config{
		Local:   localA,
		OwnerOf: func(string) string { return addrB },
		Obs:     regA,
	})

	if !trA.Deliver(from, dst, &testMsg{Body: "hello"}) {
		t.Fatalf("Deliver returned false")
	}
	got := remote.snapshot()
	if len(got) != 1 || got[0] != dst.Key()+":hello" {
		t.Fatalf("remote got %v, want [%s:hello]", got, dst.Key())
	}
	if n := len(localA.snapshot()); n != 0 {
		t.Fatalf("local deliverer saw %d messages, want 0", n)
	}
	if v := regA.Counter("transport.dials").Value(); v != 1 {
		t.Fatalf("dials = %d, want 1", v)
	}
	if v := regA.Counter("transport.frame_bytes_out").Value(); v == 0 {
		t.Fatalf("frame_bytes_out = 0, want > 0")
	}
}

func TestDeliverBatchSingleRPC(t *testing.T) {
	from, dst := testNodes(t)
	remote := &testLocal{}
	_, addrB := startTransport(t, Config{Local: remote})

	reg := obs.NewRegistry()
	trA, _ := startTransport(t, Config{
		Local:   &testLocal{},
		OwnerOf: func(string) string { return addrB },
		Obs:     reg,
	})

	msgs := []chord.Message{&testMsg{Body: "a"}, &testMsg{Body: "b"}, &testMsg{Body: "c"}}
	acks := trA.DeliverBatch(from, dst, msgs)
	for i, ok := range acks {
		if !ok {
			t.Fatalf("ack[%d] = false", i)
		}
	}
	if got := remote.snapshot(); len(got) != 3 || got[0] != dst.Key()+":a" || got[2] != dst.Key()+":c" {
		t.Fatalf("remote got %v", got)
	}
	// Hello + one batch frame, not one frame per message.
	if v := reg.Counter("transport.frames_out").Value(); v != 2 {
		t.Fatalf("frames_out = %d, want 2 (hello + batch)", v)
	}
}

func TestLocalShortCircuit(t *testing.T) {
	from, dst := testNodes(t)
	reg := obs.NewRegistry()
	local := &testLocal{}
	tr, _ := startTransport(t, Config{
		Local:   local,
		OwnerOf: func(string) string { return "" }, // everything local
		Obs:     reg,
	})
	if !tr.Deliver(from, dst, &testMsg{Body: "x"}) {
		t.Fatalf("Deliver returned false")
	}
	if got := local.snapshot(); len(got) != 1 {
		t.Fatalf("local got %v, want one delivery", got)
	}
	if v := reg.Counter("transport.dials").Value(); v != 0 {
		t.Fatalf("dials = %d, want 0 for local delivery", v)
	}
}

func TestForceLoopbackCrossesSocket(t *testing.T) {
	from, dst := testNodes(t)
	reg := obs.NewRegistry()
	local := &testLocal{}
	// Locally-owned destination + ForceLoopback: the delivery must still
	// dial our own listener and cross a real socket.
	tr, _ := startTransport(t, Config{
		Local:         local,
		OwnerOf:       func(string) string { return "" },
		Obs:           reg,
		ForceLoopback: true,
	})
	if !tr.Deliver(from, dst, &testMsg{Body: "loop"}) {
		t.Fatalf("Deliver returned false")
	}
	if got := local.snapshot(); len(got) != 1 || got[0] != dst.Key()+":loop" {
		t.Fatalf("local got %v", got)
	}
	if v := reg.Counter("transport.dials").Value(); v == 0 {
		t.Fatalf("dials = 0, want a real socket under ForceLoopback")
	}
}

func TestPoolReuseAndReconnect(t *testing.T) {
	from, dst := testNodes(t)
	remote := &testLocal{}
	_, addrB := startTransport(t, Config{Local: remote})

	reg := obs.NewRegistry()
	trA, _ := startTransport(t, Config{
		Local:       &testLocal{},
		OwnerOf:     func(string) string { return addrB },
		Obs:         reg,
		BackoffBase: time.Millisecond,
	})

	for i := 0; i < 3; i++ {
		if !trA.Deliver(from, dst, &testMsg{Body: "m"}) {
			t.Fatalf("Deliver %d returned false", i)
		}
	}
	if v := reg.Counter("transport.dials").Value(); v != 1 {
		t.Fatalf("dials = %d, want 1 (pooled connection reused)", v)
	}

	// Kill the pooled connection underneath the pool. The read loop sits
	// in a blocking read even while the connection idles, so the close is
	// detected eagerly: either checkout skips the already-poisoned conn,
	// or the first RPC on it fails and retries — both end in a
	// transparent re-dial.
	pc := trA.pool.get(addrB, time.Now())
	if pc == nil {
		t.Fatalf("no pooled connection to sabotage")
	}
	_ = pc.c.Close()
	trA.pool.release(pc, time.Now())

	if !trA.Deliver(from, dst, &testMsg{Body: "after"}) {
		t.Fatalf("Deliver after broken conn returned false")
	}
	if v := reg.Counter("transport.reconnects").Value(); v != 1 {
		t.Fatalf("reconnects = %d, want 1", v)
	}
}

func TestRPCFailureReturnsNack(t *testing.T) {
	from, dst := testNodes(t)
	reg := obs.NewRegistry()
	// Dead address: a listener bound then closed, so nothing answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()

	tr, _ := startTransport(t, Config{
		Local:       &testLocal{},
		OwnerOf:     func(string) string { return dead },
		Obs:         reg,
		Attempts:    2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		DialTimeout: 200 * time.Millisecond,
	})
	if tr.Deliver(from, dst, &testMsg{Body: "x"}) {
		t.Fatalf("Deliver to dead peer returned true")
	}
	if v := reg.Counter("transport.rpc_failures").Value(); v != 1 {
		t.Fatalf("rpc_failures = %d, want 1", v)
	}
	if v := reg.Counter("transport.retries").Value(); v != 1 {
		t.Fatalf("retries = %d, want 1 (attempts=2)", v)
	}
}

func TestDeadDestinationNacks(t *testing.T) {
	from, dst := testNodes(t)
	remote := &testLocal{fail: true}
	_, addrB := startTransport(t, Config{Local: remote})
	tr, _ := startTransport(t, Config{
		Local:   &testLocal{},
		OwnerOf: func(string) string { return addrB },
	})
	if tr.Deliver(from, dst, &testMsg{Body: "x"}) {
		t.Fatalf("Deliver returned true for a refusing destination")
	}
}

func TestIdleReaping(t *testing.T) {
	from, dst := testNodes(t)
	remote := &testLocal{}
	_, addrB := startTransport(t, Config{Local: remote})

	reg := obs.NewRegistry()
	tr, _ := startTransport(t, Config{
		Local:       &testLocal{},
		OwnerOf:     func(string) string { return addrB },
		Obs:         reg,
		IdleTimeout: 20 * time.Millisecond,
	})
	if !tr.Deliver(from, dst, &testMsg{Body: "x"}) {
		t.Fatalf("Deliver returned false")
	}
	if n := tr.pool.idleCount(); n != 1 {
		t.Fatalf("idle = %d after RPC, want 1", n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tr.pool.idleCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFrameLimits(t *testing.T) {
	// A forged length prefix must be rejected before allocation.
	server, client := net.Pipe()
	defer func() { _ = server.Close() }()
	defer func() { _ = client.Close() }()
	go func() {
		_, _ = client.Write([]byte{0xff, 0xff, 0xff, 0xff})
	}()
	if _, err := readFrame(bufio.NewReader(server)); err == nil {
		t.Fatalf("readFrame accepted an oversized frame header")
	}

	// Outbound frames past the cap are refused locally.
	if err := writeFrame(client, make([]byte, maxFrame+1)); err == nil {
		t.Fatalf("writeFrame accepted an oversized payload")
	}
}

func TestAckValidation(t *testing.T) {
	statuses := []byte{ackOK, ackFail, ackOK}
	frame := encodeAck(7, statuses)
	r := wire.NewReader(frame)
	if ftype, _ := r.Uvarint(); ftype != frameAck {
		t.Fatalf("frame type = %d", ftype)
	}
	got, err := decodeAck(r, 7, 3)
	if err != nil {
		t.Fatalf("decodeAck: %v", err)
	}
	for i := range statuses {
		if got[i] != statuses[i] {
			t.Fatalf("status[%d] = %d, want %d", i, got[i], statuses[i])
		}
	}

	// Wrong seq and wrong count must both fail.
	r = wire.NewReader(frame)
	_, _ = r.Uvarint()
	if _, err := decodeAck(r, 8, 3); err == nil {
		t.Fatalf("decodeAck accepted a mismatched seq")
	}
	r = wire.NewReader(frame)
	_, _ = r.Uvarint()
	if _, err := decodeAck(r, 7, 2); err == nil {
		t.Fatalf("decodeAck accepted a mismatched count")
	}
}
