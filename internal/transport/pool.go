package transport

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// pooledConn is one established, hello-verified connection to a peer. A
// connection is checked out exclusively for the duration of one RPC
// (write batch, read ack), so none of its fields need locking.
type pooledConn struct {
	c         net.Conn
	br        *bufio.Reader
	seq       uint64
	idleSince time.Time
}

// pool keeps idle connections per peer address. Checkout pops the most
// recently used connection (LIFO, so the oldest ones go cold and get
// reaped); when the pool is empty the transport dials a fresh one, so the
// number of active connections tracks the RPC concurrency and only idle
// ones are bounded.
type pool struct {
	mu      sync.Mutex
	idle    map[string][]*pooledConn
	maxIdle int
	// everConnected distinguishes a first dial from a re-dial after a
	// connection was torn down, for the reconnect metric.
	everConnected map[string]bool
	closed        bool
}

func newPool(maxIdle int) *pool {
	return &pool{
		idle:          make(map[string][]*pooledConn),
		maxIdle:       maxIdle,
		everConnected: make(map[string]bool),
	}
}

// get pops an idle connection to addr, or returns nil when the caller
// must dial.
func (p *pool) get(addr string) *pooledConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	conns := p.idle[addr]
	if len(conns) == 0 {
		return nil
	}
	pc := conns[len(conns)-1]
	p.idle[addr] = conns[:len(conns)-1]
	return pc
}

// put returns a healthy connection to the pool. A false return means the
// pool refused it (closed, or idle limit reached) and the caller must
// close it.
func (p *pool) put(addr string, pc *pooledConn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.idle[addr]) >= p.maxIdle {
		return false
	}
	pc.idleSince = time.Now()
	p.idle[addr] = append(p.idle[addr], pc)
	return true
}

// markConnected records a successful dial to addr and reports whether the
// peer had been connected before (i.e. this dial is a reconnect).
func (p *pool) markConnected(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := p.everConnected[addr]
	p.everConnected[addr] = true
	return seen
}

// reap closes idle connections unused since before cutoff and returns how
// many it dropped.
func (p *pool) reap(cutoff time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	reaped := 0
	for addr, conns := range p.idle {
		kept := conns[:0]
		for _, pc := range conns {
			if pc.idleSince.Before(cutoff) {
				_ = pc.c.Close()
				reaped++
			} else {
				kept = append(kept, pc)
			}
		}
		p.idle[addr] = kept
	}
	return reaped
}

// idleCount returns the total idle connections across peers.
func (p *pool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, conns := range p.idle {
		n += len(conns)
	}
	return n
}

// closeAll closes every idle connection and refuses future puts.
func (p *pool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, conns := range p.idle {
		for _, pc := range conns {
			_ = pc.c.Close()
		}
	}
	p.idle = make(map[string][]*pooledConn)
}

// newPooledConn wraps a freshly dialed, hello-verified connection.
func newPooledConn(c net.Conn) *pooledConn {
	return &pooledConn{c: c, br: bufio.NewReader(c), idleSince: time.Now()}
}
