package transport

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"
)

var (
	errPoolClosed     = errors.New("transport: pool closed")
	errConnIdleReaped = errors.New("transport: connection reaped after idle timeout")
)

// call is one in-flight request on a pipelined connection: the writer
// enqueues it under the request's seq and the connection's read loop
// completes it with the reply frame echoing that seq. Replies
// demultiplex purely by seq — the server answers pipelined frames in
// completion order, not arrival order (nested RPCs between mutually
// calling peers forbid in-order replies) — so FIFO position means
// nothing.
//
// Calls recycle through callPool: done is a one-slot channel completed
// by a single send (never closed), each call is completed exactly once
// (take/failAll remove it from the map under errMu first), and the
// waiter drains the token before the call is reset and pooled.
type call struct {
	payload []byte  // reply frame payload; aliases *buf
	buf     *[]byte // pooled backing array, returned via replyBufPool
	err     error
	done    chan struct{}
}

var callPool = sync.Pool{New: func() interface{} {
	return &call{done: make(chan struct{}, 1)}
}}

func getCall() *call { return callPool.Get().(*call) }

// putCall resets a call and returns it to the pool. Every recycle —
// finish and the never-enqueued error paths — routes through here, so a
// pooled call always re-enters with cleared fields.
func putCall(cl *call) {
	cl.payload, cl.buf, cl.err = nil, nil, nil
	callPool.Put(cl)
}

// finish extracts a completed call's results, resets it and returns it
// to the pool. The payload remains valid until its buffer is released
// with putReplyBuf.
func (cl *call) finish() (payload []byte, buf *[]byte, err error) {
	payload, buf, err = cl.payload, cl.buf, cl.err
	putCall(cl)
	return payload, buf, err
}

// replyBufPool recycles reply payload read buffers across RPCs; each
// in-flight reply owns its buffer, so concurrent calls on one connection
// never alias.
var replyBufPool = sync.Pool{New: func() interface{} { return new([]byte) }}

func putReplyBuf(buf *[]byte) {
	if buf != nil {
		replyBufPool.Put(buf)
	}
}

// pooledConn is one established, hello-verified connection to a peer,
// shared by up to maxInflight concurrent RPCs (pipelined frames instead
// of exclusive checkout per RPC). Writers serialize on wmu; a dedicated
// read loop (TCP.readLoop) completes calls by the seq their replies
// echo.
//
// inflight and idleSince are pool bookkeeping, guarded by the pool's
// mutex — a pooledConn never changes pools.
type pooledConn struct {
	addr string
	c    net.Conn
	br   *bufio.Reader

	// wmu serializes seq assignment, call enqueueing and frame writes;
	// the request frame carrying a seq is on the wire before any later
	// seq can be assigned.
	wmu sync.Mutex
	seq uint64

	// errMu guards werr and calls. calls holds in-flight requests keyed
	// by seq; poison stores the first fatal error and closes the socket,
	// which unblocks the read loop to fail every remaining call. enqueue
	// runs under errMu, so no call can slip in after that final drain.
	errMu sync.Mutex
	werr  error
	calls map[uint64]*call

	inflight  int
	idleSince time.Time
}

// newPooledConn wraps a freshly dialed connection. The caller performs
// the hello exchange before registering it with the pool.
func newPooledConn(addr string, c net.Conn, maxInflight int) *pooledConn {
	return &pooledConn{
		addr:  addr,
		c:     c,
		br:    bufio.NewReader(c),
		calls: make(map[uint64]*call, maxInflight),
	}
}

// poison marks the connection fatally broken and closes the socket,
// which unblocks the read loop so every pending call fails fast.
// Idempotent; the first error wins.
func (pc *pooledConn) poison(err error) {
	pc.errMu.Lock()
	if pc.werr == nil {
		pc.werr = err
	}
	pc.errMu.Unlock()
	_ = pc.c.Close()
}

// broken returns the poison error, or nil while the connection is usable.
func (pc *pooledConn) broken() error {
	pc.errMu.Lock()
	defer pc.errMu.Unlock()
	return pc.werr
}

// enqueue registers a call under its request seq, failing instead of
// enqueueing on a poisoned connection so the read loop's final drain
// cannot miss it.
func (pc *pooledConn) enqueue(seq uint64, cl *call) error {
	pc.errMu.Lock()
	defer pc.errMu.Unlock()
	if pc.werr != nil {
		return pc.werr
	}
	pc.calls[seq] = cl
	return nil
}

// take removes and returns the call awaiting seq, or nil when no such
// request is in flight (a protocol violation the read loop treats as
// fatal).
func (pc *pooledConn) take(seq uint64) *call {
	pc.errMu.Lock()
	defer pc.errMu.Unlock()
	cl := pc.calls[seq]
	delete(pc.calls, seq)
	return cl
}

// failAll fails every in-flight call with the poison error. The caller
// must poison first; enqueue checks the poison error under the same lock
// this drain holds, so nothing can be queued afterwards.
func (pc *pooledConn) failAll() {
	pc.errMu.Lock()
	err := pc.werr
	calls := pc.calls
	pc.calls = nil
	pc.errMu.Unlock()
	for _, cl := range calls {
		cl.err = err
		cl.done <- struct{}{}
	}
}

// pool tracks every client connection per peer address. get hands out a
// connection with spare pipeline capacity — preferring an idle one (its
// server loop is free to answer immediately), then the least-loaded — and
// returns nil when all are saturated so the caller dials another; the
// number of connections tracks RPC concurrency / MaxInflight.
//
// Idle age is validated both by the background reaper and again at
// checkout: a connection idle past idleTimeout is never handed out (the
// peer may already have dropped its end), it is closed on the spot and
// the caller dials fresh.
type pool struct {
	mu          sync.Mutex
	conns       map[string][]*pooledConn
	maxIdle     int
	maxInflight int
	idleTimeout time.Duration
	// wg tracks read-loop goroutines. Add happens in register under mu,
	// mutually exclusive with closeAll, so it cannot race wait.
	wg sync.WaitGroup
	// everConnected distinguishes a first dial from a re-dial after a
	// connection was torn down, for the reconnect metric.
	everConnected map[string]bool
	closed        bool
}

func newPool(maxIdle, maxInflight int, idleTimeout time.Duration) *pool {
	return &pool{
		conns:         make(map[string][]*pooledConn),
		maxIdle:       maxIdle,
		maxInflight:   maxInflight,
		idleTimeout:   idleTimeout,
		everConnected: make(map[string]bool),
	}
}

// get returns a connection to addr with capacity for one more in-flight
// RPC (already counted), or nil when the caller must dial. Broken and
// stale-idle connections are pruned here — the checkout-time reap-cutoff
// check — so a conn idle past the deadline can never be handed out only
// to fail mid-RPC.
func (p *pool) get(addr string, now time.Time) *pooledConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	conns := p.conns[addr]
	kept := conns[:0]
	var (
		best       *pooledConn
		bestLoad   int
		bestIdleAt time.Time
	)
	for _, pc := range conns {
		if pc.broken() != nil {
			continue // read loop already failed it; drop our reference
		}
		if pc.inflight == 0 && now.Sub(pc.idleSince) >= p.idleTimeout {
			pc.poison(errConnIdleReaped)
			continue
		}
		kept = append(kept, pc)
		if pc.inflight == 0 {
			// Prefer the most recently used idle connection (LIFO), so
			// the oldest go cold and get reaped.
			if best == nil || bestLoad > 0 || pc.idleSince.After(bestIdleAt) {
				best, bestLoad, bestIdleAt = pc, 0, pc.idleSince
			}
		} else if pc.inflight < p.maxInflight && (best == nil || (bestLoad > 0 && pc.inflight < bestLoad)) {
			best, bestLoad = pc, pc.inflight
		}
	}
	p.conns[addr] = kept
	if best != nil {
		best.inflight++
	}
	return best
}

// register adds a freshly dialed, hello-verified connection — already
// counted as one in-flight holder — and reserves its read-loop slot.
// False means the pool is closed and the caller must tear the connection
// down without starting a read loop.
func (p *pool) register(pc *pooledConn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	pc.inflight = 1
	p.conns[pc.addr] = append(p.conns[pc.addr], pc)
	p.wg.Add(1)
	return true
}

// release returns an RPC slot. A broken connection is dropped from the
// pool; a connection going idle is timestamped, and the per-peer idle
// bound enforced by closing the least recently used idle one.
func (p *pool) release(pc *pooledConn, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pc.inflight--
	if pc.broken() != nil || p.closed {
		p.remove(pc)
		pc.poison(errPoolClosed) // no-op when already poisoned
		return
	}
	if pc.inflight > 0 {
		return
	}
	pc.idleSince = now
	idle := 0
	var lru *pooledConn
	for _, other := range p.conns[pc.addr] {
		if other.inflight == 0 && other.broken() == nil {
			idle++
			if lru == nil || other.idleSince.Before(lru.idleSince) {
				lru = other
			}
		}
	}
	if idle > p.maxIdle && lru != nil {
		lru.poison(errConnIdleReaped)
		p.remove(lru)
	}
}

// remove drops pc from its address list. Callers hold p.mu.
func (p *pool) remove(pc *pooledConn) {
	conns := p.conns[pc.addr]
	for i, other := range conns {
		if other == pc {
			p.conns[pc.addr] = append(conns[:i], conns[i+1:]...)
			return
		}
	}
}

// markConnected records a successful dial to addr and reports whether the
// peer had been connected before (i.e. this dial is a reconnect).
func (p *pool) markConnected(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := p.everConnected[addr]
	p.everConnected[addr] = true
	return seen
}

// reap closes idle connections unused since before cutoff and returns how
// many it dropped.
func (p *pool) reap(cutoff time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	reaped := 0
	for addr, conns := range p.conns {
		kept := conns[:0]
		for _, pc := range conns {
			if pc.broken() != nil {
				continue
			}
			if pc.inflight == 0 && pc.idleSince.Before(cutoff) {
				pc.poison(errConnIdleReaped)
				reaped++
				continue
			}
			kept = append(kept, pc)
		}
		p.conns[addr] = kept
	}
	return reaped
}

// idleCount returns the total idle (zero in-flight) connections across
// peers.
func (p *pool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, conns := range p.conns {
		for _, pc := range conns {
			if pc.inflight == 0 && pc.broken() == nil {
				n++
			}
		}
	}
	return n
}

// closeAll poisons every connection and refuses future registers.
func (p *pool) closeAll() {
	p.mu.Lock()
	p.closed = true
	var all []*pooledConn
	for _, conns := range p.conns {
		all = append(all, conns...)
	}
	p.conns = make(map[string][]*pooledConn)
	p.mu.Unlock()
	for _, pc := range all {
		pc.poison(errPoolClosed)
	}
}

// wait blocks until every read loop has exited; call after closeAll.
func (p *pool) wait() { p.wg.Wait() }
