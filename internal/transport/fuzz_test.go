package transport

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"cqjoin/internal/chord"
	"cqjoin/internal/wire"
)

// rejectCodec fails every decode; the fuzzer's forged batch frames must
// produce ackFail statuses, never a panic.
type rejectCodec struct{}

func (rejectCodec) Encode(w *wire.Buffer, msg chord.Message) error {
	return errors.New("rejectCodec")
}

func (rejectCodec) Decode(r *wire.Reader) (chord.Message, error) {
	return nil, errors.New("rejectCodec")
}

type nullDeliverer struct{}

func (nullDeliverer) DeliverLocal(dstKey string, msg chord.Message) bool { return false }

// fuzzMembership admits any joiner and adopts any newer view, like the
// daemon's handler but without an overlay behind it.
type fuzzMembership struct {
	version uint64
	procs   []string
}

func (m *fuzzMembership) HandleJoin(addr string) (*wire.MemberView, error) {
	m.version++
	m.procs = append(m.procs, addr)
	sort.Strings(m.procs)
	return &wire.MemberView{Version: m.version, Procs: append([]string(nil), m.procs...)}, nil
}

func (m *fuzzMembership) HandleView(v *wire.MemberView) uint64 {
	if v.Version > m.version {
		m.version = v.Version
		m.procs = append([]string(nil), v.Procs...)
	}
	return m.version
}

// FuzzMembershipFrames drives the server's frame handler with arbitrary
// payloads. Malformed membership (and batch) frames must be rejected with
// an error, never a panic, and any payload that parses as a MemberView
// must re-encode to exactly the bytes that were consumed.
func FuzzMembershipFrames(f *testing.F) {
	f.Add(encodeJoin(1, "127.0.0.1:9001"))
	f.Add(encodeView(2, &wire.MemberView{Version: 3, Procs: []string{"127.0.0.1:9001", "127.0.0.1:9002"}}))
	f.Add(encodeView(3, &wire.MemberView{Version: 0, Procs: nil}))
	f.Add(encodeViewAck(4, 7))
	f.Add(encodeHello("127.0.0.1:9001"))
	f.Add([]byte{})
	{ // view frame with a forged member count
		var w wire.Buffer
		w.PutUvarint(frameView)
		w.PutUvarint(1) // seq
		w.PutUvarint(1)
		w.PutUvarint(1 << 40)
		f.Add(w.Bytes())
	}

	f.Fuzz(func(t *testing.T, payload []byte) {
		tr, err := New(Config{
			Self:       "fuzz:0",
			OwnerOf:    func(string) string { return "" },
			Codec:      rejectCodec{},
			Local:      nullDeliverer{},
			Membership: &fuzzMembership{},
			Logf:       func(string, ...interface{}) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		reply, err := tr.handleFrame(payload)
		if err == nil && reply == nil {
			t.Fatal("frame accepted with neither reply nor error")
		}

		// Round-trip property: any payload that parses as a MemberView must
		// re-encode canonically and survive a second decode unchanged. (The
		// input bytes themselves may be non-canonical — padded uvarints — so
		// the fixed point is the first re-encoding, not the raw input.)
		if v, err := wire.DecodeMemberView(wire.NewReader(payload)); err == nil {
			var w wire.Buffer
			wire.EncodeMemberView(&w, v)
			if wire.SizeMemberView(v) != w.Len() {
				t.Fatalf("SizeMemberView=%d, encoding %d bytes", wire.SizeMemberView(v), w.Len())
			}
			v2, err := wire.DecodeMemberView(wire.NewReader(w.Bytes()))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			var w2 wire.Buffer
			wire.EncodeMemberView(&w2, v2)
			if !bytes.Equal(w.Bytes(), w2.Bytes()) {
				t.Fatalf("canonical encodings differ: %x vs %x", w.Bytes(), w2.Bytes())
			}
		}
	})
}
