// Package transport moves chord messages between processes over TCP,
// turning the single-process simulated overlay into a multi-process one.
// It implements chord.Transport: the routing, accounting and reliability
// layers above are untouched, and the engine's wire codecs
// (internal/engine/codec.go, guarded by cqlint's wiresync analyzer)
// finally cross a real socket.
//
// Deployment model: every process builds the identical overlay (same
// seed, same node keys, same ring) and a static peer list assigns each
// ring position an owning process. Routing decisions walk the locally
// replicated ring metadata for free; only final deliveries to nodes owned
// by another process cross the wire, as one framed, acked RPC over a
// pooled connection. Handlers run on the owning process, so each node's
// authoritative state lives exactly once.
//
// Reliability: an RPC that fails (dial, write, read, decode) is retried
// with seeded-jitter exponential backoff; after the attempt budget the
// delivery reports false — the same missing ack the simulator produces
// for a dropped packet — and the engine's retry/dedup layer (PR 1) takes
// over. At-least-once resends are safe because every engine receiver is
// idempotent.
//
// This package is deliberately outside cqlint's determinism scope: real
// sockets need wall-clock deadlines, idle reaping and jittered backoff.
// The simulated transport remains the bit-exact default; the differential
// test in the repo root proves the two produce identical notification
// fingerprints for the same workload.
package transport

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"cqjoin/internal/chord"
	"cqjoin/internal/obs"
	"cqjoin/internal/wire"
)

// Codec encodes and decodes chord messages. engine.NewWireCodec is the
// production implementation; the indirection keeps this package free of
// an engine dependency.
type Codec interface {
	Encode(w *wire.Buffer, msg chord.Message) error
	Decode(r *wire.Reader) (chord.Message, error)
}

// Sizer is an optional Codec extension reporting the exact encoded length
// of a message (0 when unknown). A sizing codec lets DeliverBatch encode
// each message directly into the batch frame behind a length prefix — no
// per-message scratch buffer or copy. engine.WireCodec implements it with
// the same arithmetic the wiresync analyzer pins to the encoders.
type Sizer interface {
	Size(msg chord.Message) int
}

// LocalDeliverer hands a decoded message to a node hosted on this
// process. *chord.Network satisfies it.
type LocalDeliverer interface {
	DeliverLocal(dstKey string, msg chord.Message) bool
}

// MembershipHandler reacts to membership control frames (join/view). The
// daemon layer implements it; a transport configured without one rejects
// membership frames, so static-peer-list deployments are unaffected.
type MembershipHandler interface {
	// HandleJoin admits a new process into the overlay and returns the
	// authoritative post-join view (which includes the joiner).
	HandleJoin(addr string) (*wire.MemberView, error)
	// HandleView applies gossiped membership iff it is newer than the
	// local view, and returns the local view version afterwards.
	HandleView(v *wire.MemberView) uint64
}

// Config parameterizes a TCP transport.
type Config struct {
	// Self is this process's advertised overlay address; deliveries whose
	// owner resolves to Self stay in-process (unless ForceLoopback).
	Self string
	// OwnerOf maps a node key to the advertised address of the process
	// hosting it. An empty result means locally hosted.
	OwnerOf func(dstKey string) string
	// Codec encodes outgoing and decodes incoming messages.
	Codec Codec
	// Local receives messages addressed to nodes this process hosts.
	Local LocalDeliverer
	// Membership serves join/view control frames. Nil (the default)
	// rejects them: the overlay then runs with a fixed peer list.
	Membership MembershipHandler

	// DialTimeout bounds connection establishment (default 2s); IOTimeout
	// bounds one RPC's write and ack read (default 5s).
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// IdleTimeout is how long a pooled connection may sit unused before
	// the reaper closes it (default 60s). MaxIdlePerPeer bounds the idle
	// pool per peer (default 4); active connections are unbounded and
	// track RPC concurrency.
	IdleTimeout    time.Duration
	MaxIdlePerPeer int

	// MaxInflight is how many RPCs may share one connection concurrently
	// (pipelined frames; default 4). The server answers frames in
	// completion order and replies demultiplex by the echoed seq. 1
	// restores exclusive checkout per RPC.
	MaxInflight int

	// Attempts is the RPC attempt budget including the first try (default
	// 4). BackoffBase doubles per retry up to BackoffMax (defaults 25ms
	// and 1s), with jitter drawn from a rand seeded by Seed so failure
	// schedules are reproducible in tests.
	Attempts    int
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        int64

	// ForceLoopback sends locally-owned deliveries over the socket too.
	// The differential harness uses it to push every delivery of a
	// workload through dial/frame/decode/ack on one process.
	ForceLoopback bool

	// Obs receives transport metrics ("transport.*"). Nil disables them.
	Obs *obs.Registry
	// Logf reports delivery-affecting errors (default log.Printf).
	Logf func(format string, args ...interface{})
}

// tObs holds the transport's pre-created metric handles; all nil (no-op)
// when observability is off.
type tObs struct {
	dials         *obs.Counter
	reconnects    *obs.Counter
	retries       *obs.Counter
	rpcFailures   *obs.Counter
	framesOut     *obs.Counter
	framesIn      *obs.Counter
	frameBytesOut *obs.Counter
	frameBytesIn  *obs.Counter
	decodeErrors  *obs.Counter
	idleConns     *obs.Gauge
}

func newTObs(reg *obs.Registry) tObs {
	if reg == nil {
		return tObs{}
	}
	return tObs{
		dials:         reg.Counter("transport.dials"),
		reconnects:    reg.Counter("transport.reconnects"),
		retries:       reg.Counter("transport.retries"),
		rpcFailures:   reg.Counter("transport.rpc_failures"),
		framesOut:     reg.Counter("transport.frames_out"),
		framesIn:      reg.Counter("transport.frames_in"),
		frameBytesOut: reg.Counter("transport.frame_bytes_out"),
		frameBytesIn:  reg.Counter("transport.frame_bytes_in"),
		decodeErrors:  reg.Counter("transport.decode_errors"),
		idleConns:     reg.Gauge("transport.conns_idle"),
	}
}

// TCP is a chord.Transport over real sockets.
type TCP struct {
	cfg  Config
	pool *pool
	obs  tObs

	rngMu sync.Mutex
	rng   *rand.Rand

	mu          sync.Mutex
	ln          net.Listener
	lnAddr      string
	serverConns map[net.Conn]struct{}
	closed      bool

	done chan struct{}
	wg   sync.WaitGroup
}

// New validates cfg, fills defaults and builds a transport. Call Start
// (or ListenAndServe) to begin accepting peer connections, and Close to
// tear everything down.
func New(cfg Config) (*TCP, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("transport: Config.Self is required")
	}
	if cfg.OwnerOf == nil {
		return nil, fmt.Errorf("transport: Config.OwnerOf is required")
	}
	if cfg.Codec == nil {
		return nil, fmt.Errorf("transport: Config.Codec is required")
	}
	if cfg.Local == nil {
		return nil, fmt.Errorf("transport: Config.Local is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 5 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.MaxIdlePerPeer <= 0 {
		cfg.MaxIdlePerPeer = 4
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	t := &TCP{
		cfg:         cfg,
		pool:        newPool(cfg.MaxIdlePerPeer, cfg.MaxInflight, cfg.IdleTimeout),
		obs:         newTObs(cfg.Obs),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		serverConns: make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
	}
	return t, nil
}

// Start begins serving peer connections on ln (which tests bind to port
// 0) and starts the idle reaper. It returns immediately.
func (t *TCP) Start(ln net.Listener) {
	t.mu.Lock()
	t.ln = ln
	t.lnAddr = ln.Addr().String()
	t.mu.Unlock()
	t.wg.Add(2)
	go t.acceptLoop(ln)
	go t.reapLoop()
}

// ListenAndServe binds cfg.Self and starts serving.
func (t *TCP) ListenAndServe() error {
	ln, err := net.Listen("tcp", t.cfg.Self)
	if err != nil {
		return err
	}
	t.Start(ln)
	return nil
}

// Addr returns the listener address once started, or nil.
func (t *TCP) Addr() net.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ln == nil {
		return nil
	}
	return t.ln.Addr()
}

// Close stops the listener, the reaper and every connection, then waits
// for the server goroutines to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ln := t.ln
	conns := make([]net.Conn, 0, len(t.serverConns))
	for c := range t.serverConns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	close(t.done)
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	t.pool.closeAll()
	t.wg.Wait()
	t.pool.wait()
	return nil
}

// Deliver implements chord.Transport. The ack contract matches the
// simulator's: true only when dst's handler ran before returning.
func (t *TCP) Deliver(from, dst *chord.Node, msg chord.Message) bool {
	return t.DeliverBatch(from, dst, []chord.Message{msg})[0]
}

// DeliverBatch implements chord.Transport: one RPC moves the whole run of
// messages bound for dst's owning process. Entries are encoded exactly
// once, directly into a pooled buffer (zero per-message copies when the
// codec implements Sizer); a run whose encoding approaches the frame cap
// is split across multiple frames.
func (t *TCP) DeliverBatch(from, dst *chord.Node, msgs []chord.Message) []bool {
	acks := make([]bool, len(msgs))
	if len(msgs) == 0 {
		return acks
	}
	addr := t.cfg.OwnerOf(dst.Key())
	if (addr == "" || addr == t.cfg.Self) && !t.cfg.ForceLoopback {
		for i, m := range msgs {
			acks[i] = t.cfg.Local.DeliverLocal(dst.Key(), m)
		}
		return acks
	}
	if addr == "" || addr == t.cfg.Self {
		// ForceLoopback: push the delivery through our own listener.
		addr = t.listenAddr()
		if addr == "" {
			return acks
		}
	}
	sizer, _ := t.cfg.Codec.(Sizer)
	entries := getBuf()
	defer putBuf(entries)
	start := 0
	for i, m := range msgs {
		if err := t.appendMsgEntry(entries, dst.Key(), m, sizer); err != nil {
			// An unencodable message can never be delivered; report the
			// miss without burning the RPC budget. Chunks already sent
			// keep their acks.
			t.cfg.Logf("transport: encode %s for %s: %v", m.Kind(), dst.Key(), err)
			return acks
		}
		if entries.Len() >= maxBatchBody {
			t.rpcInto(addr, entries.Bytes(), acks[start:i+1])
			start = i + 1
			entries.Reset()
		}
	}
	if start < len(msgs) {
		t.rpcInto(addr, entries.Bytes(), acks[start:])
	}
	return acks
}

// appendMsgEntry appends one {dstKey, msg} batch entry. With a sizing
// codec the message is encoded in place behind an exact length prefix;
// otherwise it goes through a pooled scratch buffer and one copy. Both
// paths produce bytes identical to the historical PutString encoding.
func (t *TCP) appendMsgEntry(entries *wire.Buffer, dstKey string, msg chord.Message, sizer Sizer) error {
	entries.PutString(dstKey)
	if sizer != nil {
		if sz := sizer.Size(msg); sz > 0 {
			entries.PutUvarint(uint64(sz))
			before := entries.Len()
			if err := t.cfg.Codec.Encode(entries, msg); err != nil {
				return err
			}
			if got := entries.Len() - before; got != sz {
				return fmt.Errorf("transport: codec sized %s at %d bytes but encoded %d", msg.Kind(), sz, got)
			}
			return nil
		}
	}
	scratch := getBuf()
	defer putBuf(scratch)
	if err := t.cfg.Codec.Encode(scratch, msg); err != nil {
		return err
	}
	entries.PutBytes(scratch.Bytes())
	return nil
}

// rpcInto sends one batch body to addr and maps its per-message statuses
// onto acks, retrying with backoff on connection-level failures. Acks
// left all-false after the attempt budget are the remote analogue of a
// dropped packet: the caller's reliability layer may retry the whole
// delivery.
func (t *TCP) rpcInto(addr string, entries []byte, acks []bool) {
	var lastErr error
	for attempt := 0; attempt < t.cfg.Attempts; attempt++ {
		if attempt > 0 {
			t.obs.retries.Inc()
			t.backoff(attempt)
		}
		if t.isClosed() {
			break
		}
		pc, err := t.checkout(addr)
		if err != nil {
			lastErr = err
			continue
		}
		err = t.roundTrip(pc, entries, acks)
		t.pool.release(pc, time.Now())
		t.obs.idleConns.Set(int64(t.pool.idleCount()))
		if err != nil {
			lastErr = err
			continue
		}
		return
	}
	t.obs.rpcFailures.Inc()
	if lastErr != nil {
		t.cfg.Logf("transport: rpc to %s failed after %d attempts: %v", addr, t.cfg.Attempts, lastErr)
	}
}

// listenAddr returns the started listener's address, cached by Start so
// the per-batch ForceLoopback lookup does not re-render it.
func (t *TCP) listenAddr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lnAddr
}

// checkout returns a connection to addr with a reserved in-flight slot,
// dialing a fresh one (with the hello exchange) when every pooled
// connection is saturated or stale.
func (t *TCP) checkout(addr string) (*pooledConn, error) {
	if pc := t.pool.get(addr, time.Now()); pc != nil {
		t.obs.idleConns.Set(int64(t.pool.idleCount()))
		return pc, nil
	}
	c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	t.obs.dials.Inc()
	if t.pool.markConnected(addr) {
		t.obs.reconnects.Inc()
	}
	pc := newPooledConn(addr, c, t.cfg.MaxInflight)
	if err := t.hello(pc); err != nil {
		_ = c.Close()
		return nil, err
	}
	if !t.pool.register(pc) {
		_ = c.Close()
		return nil, errPoolClosed
	}
	go t.readLoop(pc)
	return pc, nil
}

// readLoop completes this connection's in-flight calls: read a reply
// frame, extract the echoed seq, hand the payload to the matching call.
// Replies arrive in the server's completion order, not request order —
// seq is the demultiplexer. On any read error or poisoning (which closes
// the socket, unblocking the read) it fails every remaining call, so no
// caller waits past the connection's death.
func (t *TCP) readLoop(pc *pooledConn) {
	defer t.pool.wg.Done()
	for {
		buf := replyBufPool.Get().(*[]byte)
		payload, err := readFrameReuse(pc.br, buf)
		if err != nil {
			putReplyBuf(buf)
			pc.poison(err)
			pc.failAll()
			return
		}
		t.obs.framesIn.Inc()
		t.obs.frameBytesIn.Add(int64(len(payload)))
		seq, err := replySeq(payload)
		if err != nil {
			putReplyBuf(buf)
			pc.poison(err)
			pc.failAll()
			return
		}
		cl := pc.take(seq)
		if cl == nil {
			putReplyBuf(buf)
			pc.poison(fmt.Errorf("transport: reply for unknown seq %d", seq))
			pc.failAll()
			return
		}
		cl.payload, cl.buf = payload, buf
		cl.done <- struct{}{}
	}
}

// hello performs the version handshake on a fresh connection.
func (t *TCP) hello(pc *pooledConn) error {
	deadline := time.Now().Add(t.cfg.IOTimeout)
	_ = pc.c.SetDeadline(deadline)
	defer func() { _ = pc.c.SetDeadline(time.Time{}) }()
	if err := t.writeFrameCounted(pc.c, encodeHello(t.cfg.Self)); err != nil {
		return fmt.Errorf("transport: hello write: %w", err)
	}
	payload, err := readFrame(pc.br)
	if err != nil {
		return fmt.Errorf("transport: hello read: %w", err)
	}
	t.obs.framesIn.Inc()
	t.obs.frameBytesIn.Add(int64(len(payload)))
	r := wire.NewReader(payload)
	ftype, err := r.Uvarint()
	if err != nil {
		return err
	}
	if ftype != frameHelloOK {
		return fmt.Errorf("transport: unexpected hello reply frame type %d", ftype)
	}
	version, err := r.Uvarint()
	if err != nil {
		return err
	}
	if version != protoVersion {
		return fmt.Errorf("transport: peer speaks protocol %d, want %d", version, protoVersion)
	}
	return nil
}

// roundTrip runs one batch RPC on a (possibly shared) pipelined
// connection: build the frame from a pooled buffer around the
// pre-encoded entries, write it and enqueue the call under the write
// lock, block for the ack matching its seq, then map its statuses onto
// acks before the pooled reply buffer goes back.
func (t *TCP) roundTrip(pc *pooledConn, entries []byte, acks []bool) error {
	w := getFrameBuf()
	defer putFrameBuf(w)
	cl := getCall()
	pc.wmu.Lock()
	pc.seq++
	seq := pc.seq
	batchHeaderInto(w, seq, len(acks))
	w.PutRaw(entries)
	frame, err := finishFrame(w)
	if err != nil {
		pc.wmu.Unlock()
		putCall(cl)
		return err
	}
	payload, buf, err := t.writeAndAwait(pc, cl, seq, frame)
	if err != nil {
		return err
	}
	defer putReplyBuf(buf)
	r := wire.NewReader(payload)
	ftype, err := r.Uvarint()
	if err != nil {
		return err
	}
	if ftype != frameAck {
		return fmt.Errorf("transport: unexpected frame type %d, want ack", ftype)
	}
	statuses, err := decodeAck(r, seq, len(acks))
	if err != nil {
		return err
	}
	for i := range statuses {
		acks[i] = statuses[i] == ackOK
	}
	return nil
}

// errAckTimeout poisons a connection whose reply outlived IOTimeout.
var errAckTimeout = errors.New("transport: timed out waiting for reply")

// writeAndAwait enqueues cl under its seq, writes the finished frame —
// both under the connection's write lock, which the caller already holds
// and which this function releases — then blocks for the reply. The call
// is enqueued before the write so the read loop owns its completion from
// that point on: a failed write poisons the connection and the read loop
// fails the call, never leaving a waiter stuck.
func (t *TCP) writeAndAwait(pc *pooledConn, cl *call, seq uint64, frame []byte) ([]byte, *[]byte, error) {
	if err := pc.enqueue(seq, cl); err != nil {
		pc.wmu.Unlock()
		putCall(cl) // never enqueued; nothing will complete it
		return nil, nil, err
	}
	_ = pc.c.SetWriteDeadline(time.Now().Add(t.cfg.IOTimeout))
	_, werr := pc.c.Write(frame)
	_ = pc.c.SetWriteDeadline(time.Time{})
	if werr != nil {
		pc.poison(werr)
		pc.wmu.Unlock()
		<-cl.done
		_, buf, _ := cl.finish()
		putReplyBuf(buf)
		return nil, nil, werr
	}
	t.obs.framesOut.Inc()
	t.obs.frameBytesOut.Add(int64(len(frame) - frameHeaderLen))
	pc.wmu.Unlock()

	timer := getTimer(t.cfg.IOTimeout)
	select {
	case <-cl.done:
	case <-timer.C:
		// Poisoning closes the socket, so the read loop unblocks and
		// completes every pending call (this one included) promptly.
		pc.poison(errAckTimeout)
		<-cl.done
	}
	putTimer(timer)
	payload, buf, err := cl.finish()
	if err != nil {
		putReplyBuf(buf)
		return nil, nil, err
	}
	return payload, buf, nil
}

// timerPool recycles RPC ack timers; getTimer/putTimer follow the
// stop-and-drain discipline so a pooled timer's channel is always empty.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		tm := v.(*time.Timer)
		tm.Reset(d)
		return tm
	}
	return time.NewTimer(d)
}

func putTimer(tm *time.Timer) {
	if !tm.Stop() {
		select {
		case <-tm.C:
		default:
		}
	}
	timerPool.Put(tm)
}

// SendJoin asks the overlay process at addr to admit this process and
// returns the authoritative post-join membership view. It retries like a
// delivery RPC; the join is idempotent on the receiver (re-admitting an
// already-listed address just returns the current view).
func (t *TCP) SendJoin(addr string) (*wire.MemberView, error) {
	payload, err := t.controlRPC(addr, frameView, func(w *wire.Buffer, seq uint64) {
		joinInto(w, seq, t.cfg.Self)
	})
	if err != nil {
		return nil, err
	}
	return wire.DecodeMemberView(wire.NewReader(payload))
}

// SendView gossips a membership view to the process at addr and returns
// the receiver's view version after it applied (or ignored) the gossip.
func (t *TCP) SendView(addr string, v *wire.MemberView) (uint64, error) {
	payload, err := t.controlRPC(addr, frameViewAck, func(w *wire.Buffer, seq uint64) {
		viewInto(w, seq, v)
	})
	if err != nil {
		return 0, err
	}
	return wire.NewReader(payload).Uvarint()
}

// controlRPC runs one membership request/reply exchange on a pooled
// connection, retrying with the same backoff schedule as deliveries.
// build appends the request payload — it receives the connection-scoped
// seq because the frame must carry it for reply demux. The returned
// reply payload has the frame type (verified against wantReply) and the
// echoed seq already consumed.
func (t *TCP) controlRPC(addr string, wantReply uint64, build func(w *wire.Buffer, seq uint64)) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < t.cfg.Attempts; attempt++ {
		if attempt > 0 {
			t.obs.retries.Inc()
			t.backoff(attempt)
		}
		if t.isClosed() {
			break
		}
		pc, err := t.checkout(addr)
		if err != nil {
			lastErr = err
			continue
		}
		payload, err := t.controlRoundTrip(pc, wantReply, build)
		t.pool.release(pc, time.Now())
		t.obs.idleConns.Set(int64(t.pool.idleCount()))
		if err != nil {
			lastErr = err
			continue
		}
		return payload, nil
	}
	t.obs.rpcFailures.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("transport: closed")
	}
	return nil, fmt.Errorf("transport: control rpc to %s failed after %d attempts: %w", addr, t.cfg.Attempts, lastErr)
}

// controlRoundTrip shares the delivery path's pipelined channel: control
// frames and batches interleave freely on one connection because every
// reply demultiplexes by its echoed seq.
func (t *TCP) controlRoundTrip(pc *pooledConn, wantReply uint64, build func(w *wire.Buffer, seq uint64)) ([]byte, error) {
	w := getFrameBuf()
	defer putFrameBuf(w)
	cl := getCall()
	pc.wmu.Lock()
	pc.seq++
	seq := pc.seq
	build(w, seq)
	frame, err := finishFrame(w)
	if err != nil {
		pc.wmu.Unlock()
		putCall(cl)
		return nil, err
	}
	payload, buf, err := t.writeAndAwait(pc, cl, seq, frame)
	if err != nil {
		return nil, err
	}
	defer putReplyBuf(buf)
	r := wire.NewReader(payload)
	ftype, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ftype != wantReply {
		return nil, fmt.Errorf("transport: unexpected control reply frame type %d, want %d", ftype, wantReply)
	}
	if got, err := r.Uvarint(); err != nil {
		return nil, err
	} else if got != seq {
		return nil, fmt.Errorf("transport: control reply for seq %d, want %d", got, seq)
	}
	// Control RPCs are rare (membership churn only); copy the body so the
	// pooled reply buffer can go back immediately.
	return append([]byte(nil), payload[len(payload)-r.Remaining():]...), nil
}

func (t *TCP) writeFrameCounted(c net.Conn, payload []byte) error {
	if err := writeFrame(c, payload); err != nil {
		return err
	}
	t.obs.framesOut.Inc()
	t.obs.frameBytesOut.Add(int64(len(payload)))
	return nil
}

// backoff sleeps base<<(attempt-1) capped at BackoffMax, plus up to 50%
// seeded jitter so synchronized retries from many senders spread out.
func (t *TCP) backoff(attempt int) {
	d := t.cfg.BackoffBase << uint(attempt-1)
	if d > t.cfg.BackoffMax || d <= 0 {
		d = t.cfg.BackoffMax
	}
	t.rngMu.Lock()
	j := time.Duration(t.rng.Int63n(int64(d)/2 + 1))
	t.rngMu.Unlock()
	select {
	case <-time.After(d + j):
	case <-t.done:
	}
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}
