package transport

import (
	"errors"
	"testing"
)

// TestPutCallClearsFields pins the reset discipline putCall centralizes:
// every recycle path — finish and the never-enqueued error paths — clears
// payload, buf and err, so a recycled call can never leak a previous
// RPC's reply or error into the next request.
func TestPutCallClearsFields(t *testing.T) {
	cl := getCall()
	b := []byte{1, 2, 3}
	cl.payload = b
	cl.buf = &b
	cl.err = errors.New("stale")
	putCall(cl)
	got := getCall()
	defer putCall(got)
	if got.payload != nil || got.buf != nil || got.err != nil {
		t.Fatalf("recycled call carries stale state: payload=%v buf=%v err=%v",
			got.payload, got.buf, got.err)
	}
}

// TestFrameBufHeaderReserved pins getFrameBuf's contract: no matter what
// state a scratch buffer was returned in, the next getFrameBuf hands out
// an empty buffer with exactly the frame header reserved.
func TestFrameBufHeaderReserved(t *testing.T) {
	w := getBuf()
	w.PutRaw([]byte("junk left over from a previous frame"))
	putBuf(w)
	fw := getFrameBuf()
	defer putFrameBuf(fw)
	if fw.Len() != frameHeaderLen {
		t.Fatalf("getFrameBuf returned %d bytes, want the %d-byte reserved header",
			fw.Len(), frameHeaderLen)
	}
}
