package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"cqjoin/internal/chord"
	"cqjoin/internal/obs"
	"cqjoin/internal/wire"
)

// sizedTestCodec is testCodec plus the Sizer extension, so batches take
// the in-place encode path (size-prefixed entry written directly into
// the pooled frame buffer) instead of the scratch-copy fallback.
type sizedTestCodec struct{ testCodec }

func (sizedTestCodec) Size(msg chord.Message) int {
	tm, ok := msg.(*testMsg)
	if !ok {
		return 0
	}
	return uvarintLen(uint64(len(tm.Body))) + len(tm.Body)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// TestSizedCodecMatchesEncode pins the Sizer contract the in-place path
// relies on: Size must equal the encoded length exactly.
func TestSizedCodecMatchesEncode(t *testing.T) {
	var c sizedTestCodec
	for _, body := range []string{"", "x", "hello world", string(make([]byte, 200))} {
		msg := &testMsg{Body: body}
		var w wire.Buffer
		if err := c.Encode(&w, msg); err != nil {
			t.Fatalf("encode %q: %v", body, err)
		}
		if got, want := c.Size(msg), w.Len(); got != want {
			t.Fatalf("Size(%q) = %d, encoded length %d", body, got, want)
		}
	}
}

// TestPooledEncodeConcurrentNoAliasing hammers the pooled encode path
// from 8 goroutines. Frame buffers come from a sync.Pool and entries are
// encoded in place, so any cross-request buffer aliasing shows up as a
// corrupted, missing or duplicated delivery; under -race it also trips
// the race detector. The delivered multiset must equal the sent multiset
// exactly.
func TestPooledEncodeConcurrentNoAliasing(t *testing.T) {
	from, dst := testNodes(t)
	remote := &testLocal{}
	_, addrB := startTransport(t, Config{Local: remote, Codec: sizedTestCodec{}})

	trA, _ := startTransport(t, Config{
		Local:   &testLocal{},
		Codec:   sizedTestCodec{},
		OwnerOf: func(string) string { return addrB },
	})

	const workers = 8
	const rounds = 25
	const perBatch = 16
	var want []string
	for w := 0; w < workers; w++ {
		for r := 0; r < rounds; r++ {
			for i := 0; i < perBatch; i++ {
				want = append(want, fmt.Sprintf("%s:w%d-r%d-i%d", dst.Key(), w, r, i))
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				msgs := make([]chord.Message, perBatch)
				for i := range msgs {
					msgs[i] = &testMsg{Body: fmt.Sprintf("w%d-r%d-i%d", worker, r, i)}
				}
				acks := trA.DeliverBatch(from, dst, msgs)
				for i, ok := range acks {
					if !ok {
						t.Errorf("worker %d round %d msg %d not acked", worker, r, i)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	got := remote.snapshot()
	if len(got) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(got), len(want))
	}
	sort.Strings(got)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery multiset diverged at %d: got %q, want %q (buffer aliasing?)", i, got[i], want[i])
		}
	}
}

// TestPipelinedSharedConn proves concurrent RPCs share one pipelined
// connection instead of dialing per request: after a warm-up dial, 8
// concurrent batches at MaxInflight 8 must not add a second dial.
func TestPipelinedSharedConn(t *testing.T) {
	from, dst := testNodes(t)
	remote := &testLocal{}
	_, addrB := startTransport(t, Config{Local: remote})

	reg := obs.NewRegistry()
	trA, _ := startTransport(t, Config{
		Local:       &testLocal{},
		OwnerOf:     func(string) string { return addrB },
		Obs:         reg,
		MaxInflight: 8,
	})

	if !trA.Deliver(from, dst, &testMsg{Body: "warmup"}) {
		t.Fatalf("warm-up Deliver failed")
	}

	const concurrent = 8
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !trA.Deliver(from, dst, &testMsg{Body: fmt.Sprintf("m%d", i)}) {
				t.Errorf("Deliver %d failed", i)
			}
		}(i)
	}
	wg.Wait()

	if v := reg.Counter("transport.dials").Value(); v != 1 {
		t.Fatalf("dials = %d, want 1: concurrent RPCs should pipeline on the shared conn", v)
	}
	if got := len(remote.snapshot()); got != concurrent+1 {
		t.Fatalf("delivered %d messages, want %d", got, concurrent+1)
	}
}

// TestPoolChecksIdleAgeAtGet is the regression test for checkout
// trusting the reaper: get used to hand back the MRU idle conn without
// re-checking the reap cutoff, so a conn idle past the timeout — whose
// peer may long since have dropped it — could be checked out in the
// window before the next reaper pass. get must validate age itself.
func TestPoolChecksIdleAgeAtGet(t *testing.T) {
	const idleTimeout = 50 * time.Millisecond
	p := newPool(4, 4, idleTimeout)

	c, peer := net.Pipe()
	t.Cleanup(func() { _ = peer.Close() })
	pc := newPooledConn("addr", c, 4)
	if !p.register(pc) {
		t.Fatalf("register refused")
	}
	now := time.Now()
	p.release(pc, now)

	// Fresh idle conn: reused.
	if got := p.get("addr", now.Add(idleTimeout/2)); got != pc {
		t.Fatalf("get = %v, want the fresh idle conn", got)
	}
	p.release(pc, now)

	// Same conn past the cutoff: refused and poisoned, never handed out.
	if got := p.get("addr", now.Add(2*idleTimeout)); got != nil {
		t.Fatalf("get handed out a conn idle past the reap cutoff")
	}
	if pc.broken() == nil {
		t.Fatalf("stale conn was not poisoned at checkout")
	}
	if n := p.idleCount(); n != 0 {
		t.Fatalf("idleCount = %d after stale checkout, want 0", n)
	}
}
