package exp

import (
	"cqjoin/internal/engine"
	"cqjoin/internal/workload"
)

// X71 measures the multi-way chain extension (the future work of
// Chapter 7): traffic and load as the chain arity k grows under a fixed
// node count, query count and tuple budget. Longer chains cost more
// reindexing per completed combination — every matched stage is another
// value-level hop — while per-node load keeps spreading over the value
// space.
func X71(sc Scale) *Table {
	t := &Table{
		ID:     "X7.1",
		Title:  "Multi-way chain joins: traffic and load vs chain arity",
		Note:   "SAI pipeline generalization; expected shape: hops/tuple grows with k, completions need k matching stages",
		Header: []string{"k", "hops/tuple", "mjoin msgs", "TF gini", "TF used", "notifications"},
	}
	ks := []int{2, 3, 4}
	rows := make([][]string, len(ks))
	ForEach(len(ks), func(ki int) {
		k := ks[ki]
		// A moderately sparse value domain keeps the number of completed
		// combinations from exploding combinatorially with k while still
		// exercising every pipeline stage.
		r := Setup(engine.Config{Algorithm: engine.SAI}, sc, workload.Params{Pairs: 2, Attrs: 2, Domain: 200, Theta: 0.5})
		queries := sc.Queries / 8
		if queries == 0 {
			queries = 1
		}
		for i := 0; i < queries; i++ {
			if _, err := r.Eng.SubscribeMulti(r.randomNode(), r.Gen.QueryChain(k)); err != nil {
				panic(err)
			}
		}
		r.ResetMeters()
		for i := 0; i < sc.Tuples; i++ {
			if _, err := r.Eng.Publish(r.randomNode(), r.Gen.ChainTuple(k)); err != nil {
				panic(err)
			}
		}
		m := r.Measure(sc.Tuples)
		rows[ki] = []string{d(int64(k)), f1(m.HopsPerTuple),
			d(r.Net.Traffic().Messages("mjoin")),
			f3(m.TF.Gini), d(int64(m.TF.NonZero)), d(int64(m.Notifications))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}
