package exp

import (
	"math/rand"

	"cqjoin/internal/chord"
	"cqjoin/internal/engine"
	"cqjoin/internal/metrics"
	"cqjoin/internal/workload"
)

// Scale sets the size of an experiment run. Benchmarks and `go test` use
// CI(); the CLI defaults to Paper(), the thesis set-up (10^4-node network,
// 10^5 indexed queries, Section 4.5).
type Scale struct {
	Nodes   int
	Queries int
	Tuples  int
	Seed    int64
}

// CI returns a laptop-second scale preserving every experiment's shape.
func CI() Scale { return Scale{Nodes: 256, Queries: 400, Tuples: 400, Seed: 1} }

// Paper returns the thesis scale. Expect minutes per experiment.
func Paper() Scale { return Scale{Nodes: 10000, Queries: 100000, Tuples: 20000, Seed: 1} }

// Run is a live experiment: an overlay, an engine and a workload stream.
type Run struct {
	Net   *chord.Network
	Eng   *engine.Engine
	Gen   *workload.Generator
	Nodes []*chord.Node
	rng   *rand.Rand
}

// Setup builds an overlay of sc.Nodes peers running the given engine
// configuration over a fresh workload generator.
func Setup(cfg engine.Config, sc Scale, wp workload.Params) *Run {
	if wp.Seed == 0 {
		wp.Seed = sc.Seed
	}
	if cfg.Seed == 0 {
		cfg.Seed = sc.Seed
	}
	gen := workload.New(wp)
	// One registry serves both layers: the overlay records routing-level
	// metrics ("chord.*", "sim.*", traffic families) and the engine records
	// protocol-level ones ("engine.*"). cfg.Obs is nil by default, which
	// disables the whole layer at zero cost.
	net := chord.New(chord.Config{Obs: cfg.Obs})
	net.AddNodes("peer", sc.Nodes)
	eng := engine.New(net, gen.Catalog(), cfg)
	return &Run{
		Net:   net,
		Eng:   eng,
		Gen:   gen,
		Nodes: net.Nodes(),
		rng:   rand.New(rand.NewSource(sc.Seed + 7)),
	}
}

// randomNode picks a peer to act (pose a query, insert a tuple).
func (r *Run) randomNode() *chord.Node {
	return r.Nodes[r.rng.Intn(len(r.Nodes))]
}

// SubscribeT1 indexes n type-T1 queries from random peers.
func (r *Run) SubscribeT1(n int) {
	for i := 0; i < n; i++ {
		if _, err := r.Eng.Subscribe(r.randomNode(), r.Gen.Query()); err != nil {
			panic(err)
		}
	}
}

// SubscribeT2 indexes n type-T2 queries (DAI-V only).
func (r *Run) SubscribeT2(n int) {
	for i := 0; i < n; i++ {
		if _, err := r.Eng.Subscribe(r.randomNode(), r.Gen.QueryT2()); err != nil {
			panic(err)
		}
	}
}

// PublishTuples inserts n workload tuples from random peers through the
// engine's batched pipeline (tier 2, DESIGN.md §8). The workload and
// origin-node draws happen sequentially here, so the batch's content is
// identical at any worker count; PublishBatch then guarantees identical
// observable results.
func (r *Run) PublishTuples(n int) {
	ops := make([]engine.PublishOp, n)
	for i := range ops {
		ops[i] = engine.PublishOp{From: r.randomNode(), T: r.Gen.Tuple()}
	}
	if err := r.Eng.PublishBatch(ops, Parallelism()); err != nil {
		panic(err)
	}
}

// PublishWindows inserts `batches` batches of `perBatch` tuples, applying
// window eviction between batches — the sliding-window regime of
// Figures 5.8/5.9. The logical clock ticks once per insertion, so a window
// of w keeps roughly the tuples of the last w insertions resident.
func (r *Run) PublishWindows(batches, perBatch int) {
	evict := r.Eng.Config().Window > 0
	for b := 0; b < batches; b++ {
		r.PublishTuples(perBatch)
		if evict {
			r.Eng.EvictExpired()
		}
	}
}

// ResetMeters zeroes the traffic ledger, the load counters and the
// delivered-notification record, marking the end of warm-up.
func (r *Run) ResetMeters() {
	r.Net.Traffic().Reset()
	r.Eng.ResetLoads()
	r.Eng.ResetNotifications()
}

// Measurements snapshots the metrics the figures report.
type Measurements struct {
	// HopsPerTuple is total overlay hops divided by inserted tuples — the
	// y-axis of the traffic figures.
	HopsPerTuple float64
	// MsgsPerTuple is total messages divided by inserted tuples.
	MsgsPerTuple float64
	// TF and TS summarize the per-node filtering and storage loads.
	TF, TS metrics.Distribution
	// Notifications is the number delivered since the last reset.
	Notifications int
}

// Measure collects the standard metric set after publishing `tuples`
// tuples since the last ResetMeters.
func (r *Run) Measure(tuples int) Measurements {
	m := Measurements{
		TF:            metrics.SummarizeInt(r.Eng.FilteringLoads()),
		TS:            metrics.SummarizeInt(r.Eng.StorageLoads()),
		Notifications: len(r.Eng.Notifications()),
	}
	if tuples > 0 {
		m.HopsPerTuple = float64(r.Net.Traffic().TotalHops()) / float64(tuples)
		m.MsgsPerTuple = float64(r.Net.Traffic().TotalMessages()) / float64(tuples)
	}
	return m
}

// mainAlgorithms are the four algorithms of Chapter 4 in presentation
// order.
func mainAlgorithms() []engine.Algorithm {
	return []engine.Algorithm{engine.SAI, engine.DAIQ, engine.DAIT, engine.DAIV}
}
