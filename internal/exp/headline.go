package exp

import (
	"cqjoin/internal/engine"
	"cqjoin/internal/obs"
	"cqjoin/internal/workload"
)

// Headline runs the canonical SAI workload at scale sc with observability
// enabled and returns the paper's headline metrics together with the run
// (whose overlay carries the populated obs registry, reachable via
// run.Net.Obs()). It is the anchor workload behind the benchmark manifest:
// every number it produces is a pure function of sc, so manifest diffs on
// its metrics are deterministic regressions, not noise.
func Headline(sc Scale) (Measurements, *Run) {
	reg := obs.NewRegistry()
	r := Setup(engine.Config{Algorithm: engine.SAI, Obs: reg}, sc, workload.Params{})
	r.SubscribeT1(sc.Queries)
	r.ResetMeters()
	r.PublishTuples(sc.Tuples)
	return r.Measure(sc.Tuples), r
}
