package exp

import (
	"cqjoin/internal/engine"
	"cqjoin/internal/metrics"
	"cqjoin/internal/workload"
)

// distCells renders the distribution columns shared by the load figures.
func distCells(dist metrics.Distribution) []string {
	return []string{
		d(int64(dist.NonZero)), f1(dist.Mean), f1(dist.Max), f3(dist.Gini), f2(dist.Top1Share),
	}
}

var distHeader = []string{"nodes used", "mean", "max", "gini", "top1% share"}

// Fig56 regenerates Figure 5.6: the effect of the attribute-level
// replication scheme on the filtering-load distribution. Replicating the
// rewriter role over k nodes splits each hot attribute's triggering work k
// ways, lowering the maximum and the skew.
func Fig56(sc Scale) *Table {
	t := &Table{
		ID:     "F5.6",
		Title:  "Effect of the replication scheme in filtering load distribution",
		Note:   "rewriter-role TF only; expected shape: max and gini fall, used nodes rise with k",
		Header: append([]string{"replication k"}, distHeader...),
	}
	for _, k := range []int{1, 2, 4, 8} {
		r := replicationRun(sc, k)
		dist := metrics.SummarizeInt(r.Eng.RoleLoads(metrics.Rewriter, false))
		t.AddRow(append([]string{d(int64(k))}, distCells(dist)...)...)
	}
	return t
}

// Fig57 regenerates Figure 5.7: the replication scheme's effect on the
// storage-load distribution. Queries are stored at all k replicas, so
// total rewriter storage grows k-fold while spreading across k-times as
// many nodes.
func Fig57(sc Scale) *Table {
	t := &Table{
		ID:     "F5.7",
		Title:  "Effect of the replication scheme in storage load distribution",
		Note:   "rewriter-role TS only; expected shape: total grows k-fold, spread over k-times the nodes",
		Header: append([]string{"replication k", "total"}, distHeader...),
	}
	for _, k := range []int{1, 2, 4, 8} {
		r := replicationRun(sc, k)
		dist := metrics.SummarizeInt(r.Eng.RoleLoads(metrics.Rewriter, true))
		t.AddRow(append([]string{d(int64(k)), f1(dist.Total)}, distCells(dist)...)...)
	}
	return t
}

func replicationRun(sc Scale, k int) *Run {
	// A narrow schema (one pair, two attributes) keeps the number of
	// rewriter identifiers far below the node count, the regime replication
	// targets: few hot attribute-level nodes in a large network.
	r := Setup(engine.Config{Algorithm: engine.SAI, ReplicationFactor: k}, sc, workload.Params{Pairs: 1, Attrs: 2})
	r.SubscribeT1(sc.Queries)
	r.PublishTuples(sc.Tuples)
	return r
}

// Fig58 regenerates Figure 5.8: the effect of window size and installed
// queries on the total evaluator filtering load. A longer window keeps more
// tuples resident, so every rewritten query scans more candidates; more
// queries trigger more rewrites.
func Fig58(sc Scale) *Table {
	t := &Table{
		ID:     "F5.8",
		Title:  "Effect of window size and installed queries in total evaluator filtering load",
		Note:   "expected shape: total TF grows with both window length and query count",
		Header: []string{"window", "queries", "total evaluator TF"},
	}
	forWindowSweep(sc, func(window int64, queries int, r *Run) {
		var total int64
		for _, l := range r.Eng.RoleLoads(metrics.Evaluator, false) {
			total += l
		}
		t.AddRow(d(window), d(int64(queries)), d(total))
	})
	return t
}

// Fig59 regenerates Figure 5.9: window size and installed queries against
// total evaluator storage load. Stored tuples are bounded by the window;
// stored rewritten queries grow with the query count.
func Fig59(sc Scale) *Table {
	t := &Table{
		ID:     "F5.9",
		Title:  "Effect of window size and installed queries in total evaluator storage load",
		Note:   "expected shape: total TS grows with window length (resident tuples) and query count (stored rewrites)",
		Header: []string{"window", "queries", "total evaluator TS"},
	}
	forWindowSweep(sc, func(window int64, queries int, r *Run) {
		var total int64
		for _, l := range r.Eng.RoleLoads(metrics.Evaluator, true) {
			total += l
		}
		t.AddRow(d(window), d(int64(queries)), d(total))
	})
	return t
}

// forWindowSweep runs the window × queries grid shared by Figures 5.8/5.9.
// The clock ticks once per insertion, so a window of w keeps roughly the
// last w insertions' tuples resident.
func forWindowSweep(sc Scale, visit func(window int64, queries int, r *Run)) {
	batches := 8
	perWindow := sc.Tuples / batches
	if perWindow == 0 {
		perWindow = 1
	}
	for _, window := range []int64{int64(perWindow), int64(4 * perWindow)} {
		for _, queries := range []int{sc.Queries / 4, sc.Queries} {
			if queries == 0 {
				continue
			}
			r := Setup(engine.Config{Algorithm: engine.SAI, Window: window}, sc, workload.Params{})
			r.SubscribeT1(queries)
			r.ResetMeters()
			r.PublishWindows(batches, perWindow)
			visit(window, queries, r)
		}
	}
}

// Fig510 regenerates Figure 5.10: the TF and TS load-distribution
// comparison for all four algorithms on the same workload.
func Fig510(sc Scale) *Table {
	t := &Table{
		ID:    "F5.10",
		Title: "TF and TS load distribution comparison for all algorithms",
		Note:  "expected shape: DAI better spread than SAI; DAI-V the most concentrated DAI (unprefixed values) but lowest traffic",
		Header: []string{"algorithm",
			"TF used", "TF max", "TF gini",
			"TS used", "TS max", "TS gini"},
	}
	for _, alg := range mainAlgorithms() {
		r := standardRun(sc, alg)
		m := r.Measure(sc.Tuples)
		t.AddRow(alg.String(),
			d(int64(m.TF.NonZero)), f1(m.TF.Max), f3(m.TF.Gini),
			d(int64(m.TS.NonZero)), f1(m.TS.Max), f3(m.TS.Gini))
	}
	return t
}

// Fig511 regenerates Figure 5.11: total filtering and storage load split
// between the two indexing levels (rewriters vs evaluators) for the
// two-level algorithms.
func Fig511(sc Scale) *Table {
	t := &Table{
		ID:    "F5.11",
		Title: "Total filtering and storage load distribution for the two-level indexing algorithms",
		Note:  "expected shape: DAI-T shifts storage to evaluators (stored rewrites) and minimizes evaluator filtering on reindex",
		Header: []string{"algorithm",
			"rewriter TF", "evaluator TF", "rewriter TS", "evaluator TS"},
	}
	for _, alg := range mainAlgorithms() {
		r := standardRun(sc, alg)
		row := []string{alg.String()}
		for _, c := range []struct {
			role    metrics.Role
			storage bool
		}{
			{metrics.Rewriter, false}, {metrics.Evaluator, false},
			{metrics.Rewriter, true}, {metrics.Evaluator, true},
		} {
			var total int64
			for _, l := range r.Eng.RoleLoads(c.role, c.storage) {
				total += l
			}
			row = append(row, d(total))
		}
		t.AddRow(row...)
	}
	return t
}

// standardRun is the shared workload for the load-distribution figures:
// subscribe, reset, publish.
func standardRun(sc Scale, alg engine.Algorithm) *Run {
	r := Setup(engine.Config{Algorithm: alg}, sc, workload.Params{})
	r.SubscribeT1(sc.Queries)
	r.ResetMeters()
	r.PublishTuples(sc.Tuples)
	return r
}

// Fig512 regenerates Figure 5.12: the filtering-load distribution as the
// frequency of incoming tuples grows. Load totals scale with the stream
// rate while the distribution shape stays stable — the scalability claim of
// Chapter 1.
func Fig512(sc Scale) *Table {
	t := &Table{
		ID:     "F5.12",
		Title:  "Effect in filtering load distribution of increasing the frequency of incoming tuples",
		Note:   "expected shape: mean/max scale with tuple count, gini roughly stable",
		Header: append([]string{"algorithm", "tuples"}, distHeader...),
	}
	for _, alg := range mainAlgorithms() {
		for _, tuples := range []int{sc.Tuples / 4, sc.Tuples, 2 * sc.Tuples} {
			if tuples == 0 {
				continue
			}
			r := Setup(engine.Config{Algorithm: alg}, sc, workload.Params{})
			r.SubscribeT1(sc.Queries)
			r.ResetMeters()
			r.PublishTuples(tuples)
			m := r.Measure(tuples)
			t.AddRow(append([]string{alg.String(), d(int64(tuples))}, distCells(m.TF)...)...)
		}
	}
	return t
}

// Fig513 regenerates Figure 5.13: the filtering-load distribution as the
// number of indexed queries grows.
func Fig513(sc Scale) *Table {
	t := &Table{
		ID:     "F5.13",
		Title:  "Effect in filtering load distribution of increasing the number of indexed queries",
		Note:   "expected shape: load grows with queries, spread over more evaluators",
		Header: append([]string{"algorithm", "queries"}, distHeader...),
	}
	for _, alg := range mainAlgorithms() {
		for _, queries := range []int{sc.Queries / 4, sc.Queries, 2 * sc.Queries} {
			if queries == 0 {
				continue
			}
			r := Setup(engine.Config{Algorithm: alg}, sc, workload.Params{})
			r.SubscribeT1(queries)
			r.ResetMeters()
			r.PublishTuples(sc.Tuples)
			m := r.Measure(sc.Tuples)
			t.AddRow(append([]string{alg.String(), d(int64(queries))}, distCells(m.TF)...)...)
		}
	}
	return t
}

// Fig514 regenerates Figure 5.14: the filtering-load distribution as the
// network grows under a fixed workload. New nodes take over identifier
// arcs and relieve existing rewriters and evaluators.
func Fig514(sc Scale) *Table {
	t := &Table{
		ID:     "F5.14",
		Title:  "Effect in filtering load distribution of increasing the network size",
		Note:   "expected shape: mean and max per-node load fall as N grows (scalability)",
		Header: append([]string{"algorithm", "N"}, distHeader...),
	}
	forNetworkSweep(sc, func(alg engine.Algorithm, n int, m Measurements) {
		t.AddRow(append([]string{alg.String(), d(int64(n))}, distCells(m.TF)...)...)
	})
	return t
}

// Fig515 regenerates Figure 5.15: the same network-size sweep restricted to
// the most loaded nodes — the share of total filtering work carried by the
// top 1% and 10%.
func Fig515(sc Scale) *Table {
	t := &Table{
		ID:     "F5.15",
		Title:  "Effect in filtering load distribution of increasing the network size for the most loaded nodes",
		Note:   "expected shape: the hottest node's absolute load falls as N grows",
		Header: []string{"algorithm", "N", "max TF", "top1% share", "top10% share"},
	}
	forNetworkSweep(sc, func(alg engine.Algorithm, n int, m Measurements) {
		t.AddRow(alg.String(), d(int64(n)), f1(m.TF.Max), f2(m.TF.Top1Share), f2(m.TF.Top10Share))
	})
	return t
}

func forNetworkSweep(sc Scale, visit func(alg engine.Algorithm, n int, m Measurements)) {
	for _, alg := range mainAlgorithms() {
		for _, n := range []int{sc.Nodes / 4, sc.Nodes, 4 * sc.Nodes} {
			if n == 0 {
				continue
			}
			sz := sc
			sz.Nodes = n
			r := Setup(engine.Config{Algorithm: alg}, sz, workload.Params{})
			r.SubscribeT1(sc.Queries)
			r.ResetMeters()
			r.PublishTuples(sc.Tuples)
			visit(alg, n, r.Measure(sc.Tuples))
		}
	}
}

// Fig516 regenerates Figure 5.16: DAI-V's filtering-load distribution under
// each of the three growth dimensions — network size, queries and tuples —
// exercised with type-T2 queries, the workload only DAI-V supports.
func Fig516(sc Scale) *Table {
	t := &Table{
		ID:     "F5.16",
		Title:  "Effect in filtering load distribution of DAI-V of increasing the network size, queries or tuples",
		Note:   "type-T2 workload; expected shape: graceful scaling on every dimension",
		Header: append([]string{"sweep", "value"}, distHeader...),
	}
	run := func(nodes, queries, tuples int) Measurements {
		sz := sc
		sz.Nodes = nodes
		r := Setup(engine.Config{Algorithm: engine.DAIV}, sz, workload.Params{})
		r.SubscribeT2(queries)
		r.ResetMeters()
		r.PublishTuples(tuples)
		return r.Measure(tuples)
	}
	for _, n := range []int{sc.Nodes / 4, sc.Nodes, 4 * sc.Nodes} {
		m := run(n, sc.Queries, sc.Tuples)
		t.AddRow(append([]string{"network", d(int64(n))}, distCells(m.TF)...)...)
	}
	for _, q := range []int{sc.Queries / 4, sc.Queries, 2 * sc.Queries} {
		m := run(sc.Nodes, q, sc.Tuples)
		t.AddRow(append([]string{"queries", d(int64(q))}, distCells(m.TF)...)...)
	}
	for _, tu := range []int{sc.Tuples / 4, sc.Tuples, 2 * sc.Tuples} {
		m := run(sc.Nodes, sc.Queries, tu)
		t.AddRow(append([]string{"tuples", d(int64(tu))}, distCells(m.TF)...)...)
	}
	return t
}
