package exp

import (
	"cqjoin/internal/engine"
	"cqjoin/internal/metrics"
	"cqjoin/internal/workload"
)

// distCells renders the distribution columns shared by the load figures.
func distCells(dist metrics.Distribution) []string {
	return []string{
		d(int64(dist.NonZero)), f1(dist.Mean), f1(dist.Max), f3(dist.Gini), f2(dist.Top1Share),
	}
}

var distHeader = []string{"nodes used", "mean", "max", "gini", "top1% share"}

// Fig56 regenerates Figure 5.6: the effect of the attribute-level
// replication scheme on the filtering-load distribution. Replicating the
// rewriter role over k nodes splits each hot attribute's triggering work k
// ways, lowering the maximum and the skew.
func Fig56(sc Scale) *Table {
	t := &Table{
		ID:     "F5.6",
		Title:  "Effect of the replication scheme in filtering load distribution",
		Note:   "rewriter-role TF only; expected shape: max and gini fall, used nodes rise with k",
		Header: append([]string{"replication k"}, distHeader...),
	}
	ks := []int{1, 2, 4, 8}
	rows := make([][]string, len(ks))
	ForEach(len(ks), func(i int) {
		r := replicationRun(sc, ks[i])
		dist := metrics.SummarizeInt(r.Eng.RoleLoads(metrics.Rewriter, false))
		rows[i] = append([]string{d(int64(ks[i]))}, distCells(dist)...)
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// Fig57 regenerates Figure 5.7: the replication scheme's effect on the
// storage-load distribution. Queries are stored at all k replicas, so
// total rewriter storage grows k-fold while spreading across k-times as
// many nodes.
func Fig57(sc Scale) *Table {
	t := &Table{
		ID:     "F5.7",
		Title:  "Effect of the replication scheme in storage load distribution",
		Note:   "rewriter-role TS only; expected shape: total grows k-fold, spread over k-times the nodes",
		Header: append([]string{"replication k", "total"}, distHeader...),
	}
	ks := []int{1, 2, 4, 8}
	rows := make([][]string, len(ks))
	ForEach(len(ks), func(i int) {
		r := replicationRun(sc, ks[i])
		dist := metrics.SummarizeInt(r.Eng.RoleLoads(metrics.Rewriter, true))
		rows[i] = append([]string{d(int64(ks[i])), f1(dist.Total)}, distCells(dist)...)
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

func replicationRun(sc Scale, k int) *Run {
	// A narrow schema (one pair, two attributes) keeps the number of
	// rewriter identifiers far below the node count, the regime replication
	// targets: few hot attribute-level nodes in a large network.
	r := Setup(engine.Config{Algorithm: engine.SAI, ReplicationFactor: k}, sc, workload.Params{Pairs: 1, Attrs: 2})
	r.SubscribeT1(sc.Queries)
	r.PublishTuples(sc.Tuples)
	return r
}

// Fig58 regenerates Figure 5.8: the effect of window size and installed
// queries on the total evaluator filtering load. A longer window keeps more
// tuples resident, so every rewritten query scans more candidates; more
// queries trigger more rewrites.
func Fig58(sc Scale) *Table {
	t := &Table{
		ID:     "F5.8",
		Title:  "Effect of window size and installed queries in total evaluator filtering load",
		Note:   "expected shape: total TF grows with both window length and query count",
		Header: []string{"window", "queries", "total evaluator TF"},
	}
	forWindowSweep(sc, func(window int64, queries int, r *Run) {
		var total int64
		for _, l := range r.Eng.RoleLoads(metrics.Evaluator, false) {
			total += l
		}
		t.AddRow(d(window), d(int64(queries)), d(total))
	})
	return t
}

// Fig59 regenerates Figure 5.9: window size and installed queries against
// total evaluator storage load. Stored tuples are bounded by the window;
// stored rewritten queries grow with the query count.
func Fig59(sc Scale) *Table {
	t := &Table{
		ID:     "F5.9",
		Title:  "Effect of window size and installed queries in total evaluator storage load",
		Note:   "expected shape: total TS grows with window length (resident tuples) and query count (stored rewrites)",
		Header: []string{"window", "queries", "total evaluator TS"},
	}
	forWindowSweep(sc, func(window int64, queries int, r *Run) {
		var total int64
		for _, l := range r.Eng.RoleLoads(metrics.Evaluator, true) {
			total += l
		}
		t.AddRow(d(window), d(int64(queries)), d(total))
	})
	return t
}

// forWindowSweep runs the window × queries grid shared by Figures 5.8/5.9.
// The clock ticks once per insertion, so a window of w keeps roughly the
// last w insertions' tuples resident. Cells run on the worker pool; visit
// is called sequentially in grid order.
func forWindowSweep(sc Scale, visit func(window int64, queries int, r *Run)) {
	batches := 8
	perWindow := sc.Tuples / batches
	if perWindow == 0 {
		perWindow = 1
	}
	type cell struct {
		window  int64
		queries int
	}
	var cells []cell
	for _, window := range []int64{int64(perWindow), int64(4 * perWindow)} {
		for _, queries := range []int{sc.Queries / 4, sc.Queries} {
			if queries == 0 {
				continue
			}
			cells = append(cells, cell{window, queries})
		}
	}
	runs := make([]*Run, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		r := Setup(engine.Config{Algorithm: engine.SAI, Window: c.window}, sc, workload.Params{})
		r.SubscribeT1(c.queries)
		r.ResetMeters()
		r.PublishWindows(batches, perWindow)
		runs[i] = r
	})
	for i, c := range cells {
		visit(c.window, c.queries, runs[i])
	}
}

// Fig510 regenerates Figure 5.10: the TF and TS load-distribution
// comparison for all four algorithms on the same workload.
func Fig510(sc Scale) *Table {
	t := &Table{
		ID:    "F5.10",
		Title: "TF and TS load distribution comparison for all algorithms",
		Note:  "expected shape: DAI better spread than SAI; DAI-V the most concentrated DAI (unprefixed values) but lowest traffic",
		Header: []string{"algorithm",
			"TF used", "TF max", "TF gini",
			"TS used", "TS max", "TS gini"},
	}
	algs := mainAlgorithms()
	rows := make([][]string, len(algs))
	ForEach(len(algs), func(i int) {
		r := standardRun(sc, algs[i])
		m := r.Measure(sc.Tuples)
		rows[i] = []string{algs[i].String(),
			d(int64(m.TF.NonZero)), f1(m.TF.Max), f3(m.TF.Gini),
			d(int64(m.TS.NonZero)), f1(m.TS.Max), f3(m.TS.Gini)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// Fig511 regenerates Figure 5.11: total filtering and storage load split
// between the two indexing levels (rewriters vs evaluators) for the
// two-level algorithms.
func Fig511(sc Scale) *Table {
	t := &Table{
		ID:    "F5.11",
		Title: "Total filtering and storage load distribution for the two-level indexing algorithms",
		Note:  "expected shape: DAI-T shifts storage to evaluators (stored rewrites) and minimizes evaluator filtering on reindex",
		Header: []string{"algorithm",
			"rewriter TF", "evaluator TF", "rewriter TS", "evaluator TS"},
	}
	algs := mainAlgorithms()
	rows := make([][]string, len(algs))
	ForEach(len(algs), func(i int) {
		r := standardRun(sc, algs[i])
		row := []string{algs[i].String()}
		for _, c := range []struct {
			role    metrics.Role
			storage bool
		}{
			{metrics.Rewriter, false}, {metrics.Evaluator, false},
			{metrics.Rewriter, true}, {metrics.Evaluator, true},
		} {
			var total int64
			for _, l := range r.Eng.RoleLoads(c.role, c.storage) {
				total += l
			}
			row = append(row, d(total))
		}
		rows[i] = row
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// standardRun is the shared workload for the load-distribution figures:
// subscribe, reset, publish.
func standardRun(sc Scale, alg engine.Algorithm) *Run {
	r := Setup(engine.Config{Algorithm: alg}, sc, workload.Params{})
	r.SubscribeT1(sc.Queries)
	r.ResetMeters()
	r.PublishTuples(sc.Tuples)
	return r
}

// Fig512 regenerates Figure 5.12: the filtering-load distribution as the
// frequency of incoming tuples grows. Load totals scale with the stream
// rate while the distribution shape stays stable — the scalability claim of
// Chapter 1.
func Fig512(sc Scale) *Table {
	t := &Table{
		ID:     "F5.12",
		Title:  "Effect in filtering load distribution of increasing the frequency of incoming tuples",
		Note:   "expected shape: mean/max scale with tuple count, gini roughly stable",
		Header: append([]string{"algorithm", "tuples"}, distHeader...),
	}
	type cell struct {
		alg    engine.Algorithm
		tuples int
	}
	var cells []cell
	for _, alg := range mainAlgorithms() {
		for _, tuples := range []int{sc.Tuples / 4, sc.Tuples, 2 * sc.Tuples} {
			if tuples == 0 {
				continue
			}
			cells = append(cells, cell{alg, tuples})
		}
	}
	rows := make([][]string, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		r := Setup(engine.Config{Algorithm: c.alg}, sc, workload.Params{})
		r.SubscribeT1(sc.Queries)
		r.ResetMeters()
		r.PublishTuples(c.tuples)
		m := r.Measure(c.tuples)
		rows[i] = append([]string{c.alg.String(), d(int64(c.tuples))}, distCells(m.TF)...)
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// Fig513 regenerates Figure 5.13: the filtering-load distribution as the
// number of indexed queries grows.
func Fig513(sc Scale) *Table {
	t := &Table{
		ID:     "F5.13",
		Title:  "Effect in filtering load distribution of increasing the number of indexed queries",
		Note:   "expected shape: load grows with queries, spread over more evaluators",
		Header: append([]string{"algorithm", "queries"}, distHeader...),
	}
	type cell struct {
		alg     engine.Algorithm
		queries int
	}
	var cells []cell
	for _, alg := range mainAlgorithms() {
		for _, queries := range []int{sc.Queries / 4, sc.Queries, 2 * sc.Queries} {
			if queries == 0 {
				continue
			}
			cells = append(cells, cell{alg, queries})
		}
	}
	rows := make([][]string, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		r := Setup(engine.Config{Algorithm: c.alg}, sc, workload.Params{})
		r.SubscribeT1(c.queries)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		m := r.Measure(sc.Tuples)
		rows[i] = append([]string{c.alg.String(), d(int64(c.queries))}, distCells(m.TF)...)
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// Fig514 regenerates Figure 5.14: the filtering-load distribution as the
// network grows under a fixed workload. New nodes take over identifier
// arcs and relieve existing rewriters and evaluators.
func Fig514(sc Scale) *Table {
	t := &Table{
		ID:     "F5.14",
		Title:  "Effect in filtering load distribution of increasing the network size",
		Note:   "expected shape: mean and max per-node load fall as N grows (scalability)",
		Header: append([]string{"algorithm", "N"}, distHeader...),
	}
	forNetworkSweep(sc, func(alg engine.Algorithm, n int, m Measurements) {
		t.AddRow(append([]string{alg.String(), d(int64(n))}, distCells(m.TF)...)...)
	})
	return t
}

// Fig515 regenerates Figure 5.15: the same network-size sweep restricted to
// the most loaded nodes — the share of total filtering work carried by the
// top 1% and 10%.
func Fig515(sc Scale) *Table {
	t := &Table{
		ID:     "F5.15",
		Title:  "Effect in filtering load distribution of increasing the network size for the most loaded nodes",
		Note:   "expected shape: the hottest node's absolute load falls as N grows",
		Header: []string{"algorithm", "N", "max TF", "top1% share", "top10% share"},
	}
	forNetworkSweep(sc, func(alg engine.Algorithm, n int, m Measurements) {
		t.AddRow(alg.String(), d(int64(n)), f1(m.TF.Max), f2(m.TF.Top1Share), f2(m.TF.Top10Share))
	})
	return t
}

// forNetworkSweep runs the algorithm × network-size grid shared by
// Figures 5.14/5.15 on the worker pool; visit is called sequentially in
// grid order.
func forNetworkSweep(sc Scale, visit func(alg engine.Algorithm, n int, m Measurements)) {
	type cell struct {
		alg engine.Algorithm
		n   int
	}
	var cells []cell
	for _, alg := range mainAlgorithms() {
		for _, n := range []int{sc.Nodes / 4, sc.Nodes, 4 * sc.Nodes} {
			if n == 0 {
				continue
			}
			cells = append(cells, cell{alg, n})
		}
	}
	ms := make([]Measurements, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		sz := sc
		sz.Nodes = c.n
		r := Setup(engine.Config{Algorithm: c.alg}, sz, workload.Params{})
		r.SubscribeT1(sc.Queries)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		ms[i] = r.Measure(sc.Tuples)
	})
	for i, c := range cells {
		visit(c.alg, c.n, ms[i])
	}
}

// Fig516 regenerates Figure 5.16: DAI-V's filtering-load distribution under
// each of the three growth dimensions — network size, queries and tuples —
// exercised with type-T2 queries, the workload only DAI-V supports.
func Fig516(sc Scale) *Table {
	t := &Table{
		ID:     "F5.16",
		Title:  "Effect in filtering load distribution of DAI-V of increasing the network size, queries or tuples",
		Note:   "type-T2 workload; expected shape: graceful scaling on every dimension",
		Header: append([]string{"sweep", "value"}, distHeader...),
	}
	type cell struct {
		sweep                  string
		value                  int
		nodes, queries, tuples int
	}
	var cells []cell
	for _, n := range []int{sc.Nodes / 4, sc.Nodes, 4 * sc.Nodes} {
		cells = append(cells, cell{"network", n, n, sc.Queries, sc.Tuples})
	}
	for _, q := range []int{sc.Queries / 4, sc.Queries, 2 * sc.Queries} {
		cells = append(cells, cell{"queries", q, sc.Nodes, q, sc.Tuples})
	}
	for _, tu := range []int{sc.Tuples / 4, sc.Tuples, 2 * sc.Tuples} {
		cells = append(cells, cell{"tuples", tu, sc.Nodes, sc.Queries, tu})
	}
	rows := make([][]string, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		sz := sc
		sz.Nodes = c.nodes
		r := Setup(engine.Config{Algorithm: engine.DAIV}, sz, workload.Params{})
		r.SubscribeT2(c.queries)
		r.ResetMeters()
		r.PublishTuples(c.tuples)
		m := r.Measure(c.tuples)
		rows[i] = append([]string{c.sweep, d(int64(c.value))}, distCells(m.TF)...)
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}
