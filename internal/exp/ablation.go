package exp

import (
	"cqjoin/internal/engine"
	"cqjoin/internal/metrics"
	"cqjoin/internal/workload"
)

// X45 is the ablation for Section 4.5's keyed DAI-V extension
// (VIndex = Key(q) + valJC). The thesis reports that in a 10^4-node
// network with 10^5 indexed queries the keyed variant creates roughly 250x
// more traffic per inserted tuple, because rewritten queries can no longer
// be grouped; in exchange the load spreads over per-query evaluators. The
// table shows both effects and how the traffic factor grows with the
// number of indexed queries.
func X45(sc Scale) *Table {
	t := &Table{
		ID:     "X4.5",
		Title:  "DAI-V keyed extension: traffic vs load-spread ablation",
		Note:   "expected shape: keyed/grouped traffic factor grows with queries; keyed spreads TF over more nodes",
		Header: []string{"queries", "grouped join hops/tuple", "keyed join hops/tuple", "factor", "grouped TF used", "keyed TF used"},
	}
	type cell struct {
		q     int
		keyed bool
	}
	type out struct {
		hops float64
		used int
	}
	var qs []int
	var cells []cell
	for _, q := range []int{sc.Queries / 4, sc.Queries, 2 * sc.Queries} {
		if q == 0 {
			continue
		}
		qs = append(qs, q)
		cells = append(cells, cell{q, false}, cell{q, true})
	}
	outs := make([]out, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		r := Setup(engine.Config{Algorithm: engine.DAIV, DAIVKeyed: c.keyed}, sc,
			workload.Params{Pairs: 1, Attrs: 2})
		r.SubscribeT1(c.q)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		// The thesis factor-of-250 claim is about reindexing traffic;
		// count the join-message hops alone so notification volume
		// (which grows with queries under both variants) cancels out.
		joinHops := float64(r.Net.Traffic().Hops("join")) / float64(sc.Tuples)
		evalTF := metrics.SummarizeInt(r.Eng.RoleLoads(metrics.Evaluator, false))
		outs[i] = out{hops: joinHops, used: evalTF.NonZero}
	})
	for qi, q := range qs {
		grouped, keyed := outs[2*qi], outs[2*qi+1]
		factor := 0.0
		if grouped.hops > 0 {
			factor = keyed.hops / grouped.hops
		}
		t.AddRow(d(int64(q)), f1(grouped.hops), f1(keyed.hops), f1(factor),
			d(int64(grouped.used)), d(int64(keyed.used)))
	}
	return t
}
