package exp

import (
	"fmt"

	"cqjoin/internal/engine"
	"cqjoin/internal/workload"
)

// Fig52 regenerates Figure 5.2: network traffic per inserted tuple for all
// four algorithms, with and without the Join Fingers Routing Table. The
// JFRT removes the O(log N) lookup from repeat reindexing, so the hops per
// tuple drop by roughly the routing factor once recurring join values warm
// the cache.
func Fig52(sc Scale) *Table {
	t := &Table{
		ID:     "F5.2",
		Title:  "Traffic cost and JFRT effect",
		Note:   "expected shape: JFRT cuts join-message hops toward 1 per reindex; DAI-T lowest steady-state traffic",
		Header: []string{"algorithm", "JFRT", "hops/tuple", "msgs/tuple", "join hops", "notifications"},
	}
	for _, alg := range mainAlgorithms() {
		for _, jfrt := range []bool{false, true} {
			// A moderate value domain makes join values recur — the regime
			// the JFRT targets (recurring rewrites to the same evaluator).
			r := Setup(engine.Config{Algorithm: alg, UseJFRT: jfrt}, sc, workload.Params{Domain: 100})
			r.SubscribeT1(sc.Queries)
			// Warm up so the JFRT effect is measured in steady state: the
			// cache fills during the first half of the stream.
			r.PublishTuples(sc.Tuples / 2)
			r.ResetMeters()
			r.PublishTuples(sc.Tuples)
			m := r.Measure(sc.Tuples)
			t.AddRow(alg.String(), fmt.Sprintf("%v", jfrt),
				f1(m.HopsPerTuple), f1(m.MsgsPerTuple),
				d(r.Net.Traffic().Hops("join")), d(int64(m.Notifications)))
		}
	}
	return t
}

// Fig53 regenerates Figure 5.3: the effect of the number of indexed queries
// on network traffic. More installed queries mean more triggered groups per
// tuple and so more rewritten-query traffic; DAI-T flattens because stored
// rewritten queries are never reindexed twice.
func Fig53(sc Scale) *Table {
	t := &Table{
		ID:     "F5.3",
		Title:  "Effect of the number of indexed queries in network traffic",
		Note:   "expected shape: hops/tuple grows with queries for SAI/DAI-Q; DAI-T flattens after warm-up",
		Header: []string{"algorithm", "queries", "hops/tuple", "join msgs/tuple"},
	}
	for _, alg := range mainAlgorithms() {
		for _, q := range []int{sc.Queries / 8, sc.Queries / 2, sc.Queries, 2 * sc.Queries} {
			if q == 0 {
				continue
			}
			r := Setup(engine.Config{Algorithm: alg}, sc, workload.Params{})
			r.SubscribeT1(q)
			// Warm up so DAI-T's reindex-once effect shows in steady state.
			r.PublishTuples(sc.Tuples / 2)
			r.ResetMeters()
			r.PublishTuples(sc.Tuples)
			m := r.Measure(sc.Tuples)
			joinMsgs := float64(r.Net.Traffic().Messages("join")) / float64(sc.Tuples)
			t.AddRow(alg.String(), d(int64(q)), f1(m.HopsPerTuple), f2(joinMsgs))
		}
	}
	return t
}

// Fig54 regenerates Figure 5.4: comparison of the index attribute selection
// strategies in SAI. Streams are asymmetric (bos ratio 4): the min-rate
// strategy indexes queries under the quiet relation, so far fewer tuple
// insertions trigger rewriting than under the random choice.
func Fig54(sc Scale) *Table {
	t := &Table{
		ID:     "F5.4",
		Title:  "Comparison of the index attribute selection strategies in SAI",
		Note:   "bos ratio 4 (left stream 4x hotter); expected shape: min-rate cheapest; random pays a grouping penalty (same-condition queries split across rewriters)",
		Header: []string{"strategy", "hops/tuple", "join msgs/tuple", "evaluators used"},
	}
	for _, strat := range []engine.Strategy{engine.StrategyRandom, engine.StrategyMinRate, engine.StrategyMinDomain, engine.StrategyLeft} {
		r := Setup(engine.Config{Algorithm: engine.SAI, Strategy: strat}, sc, workload.Params{BosRatio: 4})
		// Arrival statistics must exist before the strategies can probe
		// them (Section 4.3.6): warm up with tuples first.
		r.PublishTuples(sc.Tuples / 2)
		r.SubscribeT1(sc.Queries)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		m := r.Measure(sc.Tuples)
		joinMsgs := float64(r.Net.Traffic().Messages("join")) / float64(sc.Tuples)
		t.AddRow(strat.String(), f1(m.HopsPerTuple), f2(joinMsgs), d(int64(m.TF.NonZero)))
	}
	return t
}

// Fig55 regenerates Figure 5.5: the effect of the bos ratio — the rate
// imbalance between the two joined streams — on SAI's traffic, for the
// min-rate strategy against the random baseline. As the imbalance grows,
// min-rate's advantage grows: it parks queries on the quiet side.
func Fig55(sc Scale) *Table {
	t := &Table{
		ID:     "F5.5",
		Title:  "Effect of the bos ratio",
		Note:   "bos = left:right stream ratio (DESIGN.md §2); expected shape: min-rate advantage grows with imbalance",
		Header: []string{"bos", "random hops/tuple", "min-rate hops/tuple", "savings"},
	}
	for _, bos := range []float64{1, 2, 4, 8, 16} {
		res := make(map[engine.Strategy]float64)
		for _, strat := range []engine.Strategy{engine.StrategyRandom, engine.StrategyMinRate} {
			r := Setup(engine.Config{Algorithm: engine.SAI, Strategy: strat}, sc, workload.Params{BosRatio: bos})
			r.PublishTuples(sc.Tuples / 2)
			r.SubscribeT1(sc.Queries)
			r.ResetMeters()
			r.PublishTuples(sc.Tuples)
			res[strat] = r.Measure(sc.Tuples).HopsPerTuple
		}
		saving := 0.0
		if res[engine.StrategyRandom] > 0 {
			saving = 1 - res[engine.StrategyMinRate]/res[engine.StrategyRandom]
		}
		t.AddRow(f1(bos), f1(res[engine.StrategyRandom]), f1(res[engine.StrategyMinRate]),
			fmt.Sprintf("%.0f%%", 100*saving))
	}
	return t
}
