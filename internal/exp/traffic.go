package exp

import (
	"fmt"

	"cqjoin/internal/engine"
	"cqjoin/internal/workload"
)

// Fig52 regenerates Figure 5.2: network traffic per inserted tuple for all
// four algorithms, with and without the Join Fingers Routing Table. The
// JFRT removes the O(log N) lookup from repeat reindexing, so the hops per
// tuple drop by roughly the routing factor once recurring join values warm
// the cache.
func Fig52(sc Scale) *Table {
	t := &Table{
		ID:     "F5.2",
		Title:  "Traffic cost and JFRT effect",
		Note:   "expected shape: JFRT cuts join-message hops toward 1 per reindex; DAI-T lowest steady-state traffic",
		Header: []string{"algorithm", "JFRT", "hops/tuple", "msgs/tuple", "join hops", "notifications"},
	}
	type cell struct {
		alg  engine.Algorithm
		jfrt bool
	}
	var cells []cell
	for _, alg := range mainAlgorithms() {
		for _, jfrt := range []bool{false, true} {
			cells = append(cells, cell{alg, jfrt})
		}
	}
	rows := make([][]string, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		// A moderate value domain makes join values recur — the regime
		// the JFRT targets (recurring rewrites to the same evaluator).
		r := Setup(engine.Config{Algorithm: c.alg, UseJFRT: c.jfrt}, sc, workload.Params{Domain: 100})
		r.SubscribeT1(sc.Queries)
		// Warm up so the JFRT effect is measured in steady state: the
		// cache fills during the first half of the stream.
		r.PublishTuples(sc.Tuples / 2)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		m := r.Measure(sc.Tuples)
		rows[i] = []string{c.alg.String(), fmt.Sprintf("%v", c.jfrt),
			f1(m.HopsPerTuple), f1(m.MsgsPerTuple),
			d(r.Net.Traffic().Hops("join")), d(int64(m.Notifications))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// Fig53 regenerates Figure 5.3: the effect of the number of indexed queries
// on network traffic. More installed queries mean more triggered groups per
// tuple and so more rewritten-query traffic; DAI-T flattens because stored
// rewritten queries are never reindexed twice.
func Fig53(sc Scale) *Table {
	t := &Table{
		ID:     "F5.3",
		Title:  "Effect of the number of indexed queries in network traffic",
		Note:   "expected shape: hops/tuple grows with queries for SAI/DAI-Q; DAI-T flattens after warm-up",
		Header: []string{"algorithm", "queries", "hops/tuple", "join msgs/tuple"},
	}
	type cell struct {
		alg     engine.Algorithm
		queries int
	}
	var cells []cell
	for _, alg := range mainAlgorithms() {
		for _, q := range []int{sc.Queries / 8, sc.Queries / 2, sc.Queries, 2 * sc.Queries} {
			if q == 0 {
				continue
			}
			cells = append(cells, cell{alg, q})
		}
	}
	rows := make([][]string, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		r := Setup(engine.Config{Algorithm: c.alg}, sc, workload.Params{})
		r.SubscribeT1(c.queries)
		// Warm up so DAI-T's reindex-once effect shows in steady state.
		r.PublishTuples(sc.Tuples / 2)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		m := r.Measure(sc.Tuples)
		joinMsgs := float64(r.Net.Traffic().Messages("join")) / float64(sc.Tuples)
		rows[i] = []string{c.alg.String(), d(int64(c.queries)), f1(m.HopsPerTuple), f2(joinMsgs)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// Fig54 regenerates Figure 5.4: comparison of the index attribute selection
// strategies in SAI. Streams are asymmetric (bos ratio 4): the min-rate
// strategy indexes queries under the quiet relation, so far fewer tuple
// insertions trigger rewriting than under the random choice.
func Fig54(sc Scale) *Table {
	t := &Table{
		ID:     "F5.4",
		Title:  "Comparison of the index attribute selection strategies in SAI",
		Note:   "bos ratio 4 (left stream 4x hotter); expected shape: min-rate cheapest; random pays a grouping penalty (same-condition queries split across rewriters)",
		Header: []string{"strategy", "hops/tuple", "join msgs/tuple", "evaluators used"},
	}
	strats := []engine.Strategy{engine.StrategyRandom, engine.StrategyMinRate, engine.StrategyMinDomain, engine.StrategyLeft}
	rows := make([][]string, len(strats))
	ForEach(len(strats), func(i int) {
		strat := strats[i]
		r := Setup(engine.Config{Algorithm: engine.SAI, Strategy: strat}, sc, workload.Params{BosRatio: 4})
		// Arrival statistics must exist before the strategies can probe
		// them (Section 4.3.6): warm up with tuples first.
		r.PublishTuples(sc.Tuples / 2)
		r.SubscribeT1(sc.Queries)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		m := r.Measure(sc.Tuples)
		joinMsgs := float64(r.Net.Traffic().Messages("join")) / float64(sc.Tuples)
		rows[i] = []string{strat.String(), f1(m.HopsPerTuple), f2(joinMsgs), d(int64(m.TF.NonZero))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// Fig55 regenerates Figure 5.5: the effect of the bos ratio — the rate
// imbalance between the two joined streams — on SAI's traffic, for the
// min-rate strategy against the random baseline. As the imbalance grows,
// min-rate's advantage grows: it parks queries on the quiet side.
func Fig55(sc Scale) *Table {
	t := &Table{
		ID:     "F5.5",
		Title:  "Effect of the bos ratio",
		Note:   "bos = left:right stream ratio (DESIGN.md §2); expected shape: min-rate advantage grows with imbalance",
		Header: []string{"bos", "random hops/tuple", "min-rate hops/tuple", "savings"},
	}
	type cell struct {
		bos   float64
		strat engine.Strategy
	}
	bosValues := []float64{1, 2, 4, 8, 16}
	strats := []engine.Strategy{engine.StrategyRandom, engine.StrategyMinRate}
	var cells []cell
	for _, bos := range bosValues {
		for _, strat := range strats {
			cells = append(cells, cell{bos, strat})
		}
	}
	hops := make([]float64, len(cells))
	ForEach(len(cells), func(i int) {
		c := cells[i]
		r := Setup(engine.Config{Algorithm: engine.SAI, Strategy: c.strat}, sc, workload.Params{BosRatio: c.bos})
		r.PublishTuples(sc.Tuples / 2)
		r.SubscribeT1(sc.Queries)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		hops[i] = r.Measure(sc.Tuples).HopsPerTuple
	})
	for bi, bos := range bosValues {
		random, minRate := hops[2*bi], hops[2*bi+1]
		saving := 0.0
		if random > 0 {
			saving = 1 - minRate/random
		}
		t.AddRow(f1(bos), f1(random), f1(minRate), fmt.Sprintf("%.0f%%", 100*saving))
	}
	return t
}
