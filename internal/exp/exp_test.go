package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps the shape-assertion tests fast.
func tinyScale() Scale { return Scale{Nodes: 96, Queries: 120, Tuples: 150, Seed: 1} }

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d); rows=%d", tab.ID, row, col, len(tab.Rows))
	}
	return tab.Rows[row][col]
}

func numCell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tab, row, col), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d)=%q not numeric", tab.ID, row, col, s)
	}
	return v
}

func TestAllExperimentsRunAndPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are expensive")
	}
	sc := tinyScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(sc)
			if tab.ID != e.ID {
				t.Fatalf("table id %q != registry id %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(tab.Header), row)
				}
			}
			var buf bytes.Buffer
			tab.Print(&buf)
			if !strings.Contains(buf.String(), tab.Title) {
				t.Fatal("Print lost the title")
			}
		})
	}
}

func TestPrintCSV(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "x,y"}, {"2", `quo"te`}},
	}
	var buf bytes.Buffer
	if err := tab.PrintCSV(&buf); err != nil {
		t.Fatalf("PrintCSV: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# X — demo\n") {
		t.Fatalf("missing comment header: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"quo""te"`) {
		t.Fatalf("CSV quoting wrong: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Fatalf("line count = %d, want 4", lines)
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("F5.2")
	if err != nil || e.ID != "F5.2" {
		t.Fatalf("Lookup: %v", err)
	}
	if _, err := Lookup("F9.9"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Shape assertions: the qualitative claims of the paper must hold in the
// regenerated tables (EXPERIMENTS.md records the quantitative outputs).

func TestFig48Shape(t *testing.T) {
	tab := Fig48(tinyScale())
	// For every k >= 16, the recursive design must beat the iterative one.
	for i, row := range tab.Rows {
		k := numCell(t, tab, i, 1)
		if k < 16 {
			continue
		}
		iter, rec := numCell(t, tab, i, 2), numCell(t, tab, i, 3)
		if rec >= iter {
			t.Fatalf("k=%v: recursive %v >= iterative %v\n%v", k, rec, iter, row)
		}
	}
}

func TestFig52Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	tab := Fig52(tinyScale())
	// Rows come in (JFRT off, JFRT on) pairs per algorithm: on must not
	// exceed off in join hops.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		off := numCell(t, tab, i, 4)
		on := numCell(t, tab, i+1, 4)
		if on > off {
			t.Fatalf("%s: JFRT increased join hops %v -> %v", cell(t, tab, i, 0), off, on)
		}
	}
}

func TestFig55Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	tab := Fig55(tinyScale())
	last := len(tab.Rows) - 1
	// At heavy imbalance min-rate must save traffic over random.
	random := numCell(t, tab, last, 1)
	minRate := numCell(t, tab, last, 2)
	if minRate >= random {
		t.Fatalf("bos=%s: min-rate %v >= random %v", cell(t, tab, last, 0), minRate, random)
	}
}

func TestFig56Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	tab := Fig56(tinyScale())
	// Max rewriter filtering load must fall from k=1 to k=8.
	first := numCell(t, tab, 0, 3)
	lastRow := len(tab.Rows) - 1
	lastMax := numCell(t, tab, lastRow, 3)
	if lastMax >= first {
		t.Fatalf("replication k=8 max %v >= k=1 max %v", lastMax, first)
	}
}

func TestFig514Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	tab := Fig514(tinyScale())
	// Within each algorithm's three rows, mean load must fall as N grows.
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		small := numCell(t, tab, i, 3)   // mean at N/4
		large := numCell(t, tab, i+2, 3) // mean at 4N
		if large >= small {
			t.Fatalf("%s: mean TF did not fall with N: %v -> %v", cell(t, tab, i, 0), small, large)
		}
	}
}
