package exp

import (
	"math/rand"

	"cqjoin/internal/chord"
	"cqjoin/internal/id"
)

// multisendProbe is a minimal message for the Figure 4.8 experiment.
type multisendProbe struct{}

func (multisendProbe) Kind() string { return "ms-probe" }

// Fig48 regenerates Figure 4.8: recursive vs. iterative design for the
// multisend function. For growing destination counts k, one node sends a
// batch of messages to k random identifiers with both designs; the figure
// reports total overlay hops per batch. The recursive walk shares the
// routing path across destinations, so its advantage grows with k.
func Fig48(sc Scale) *Table {
	t := &Table{
		ID:     "F4.8",
		Title:  "Recursive vs. iterative design for the multisend function",
		Note:   "expected shape: recursive < iterative, gap grows with k (Section 2.3)",
		Header: []string{"N", "k", "iterative hops", "recursive hops", "ratio"},
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	net := chord.New(chord.Config{})
	net.AddNodes("peer", sc.Nodes)
	src := net.Nodes()[0]

	for _, k := range []int{1, 4, 16, 64, 256} {
		const trials = 10
		var iterTotal, recTotal int
		for trial := 0; trial < trials; trial++ {
			batch := make([]chord.Deliverable, k)
			for i := range batch {
				var target id.ID
				rng.Read(target[:])
				batch[i] = chord.Deliverable{Target: target, Msg: multisendProbe{}}
			}
			_, h, err := src.MultisendIterative(batch)
			if err != nil {
				panic(err)
			}
			iterTotal += h
			_, h, err = src.Multisend(batch)
			if err != nil {
				panic(err)
			}
			recTotal += h
		}
		iter := float64(iterTotal) / trials
		rec := float64(recTotal) / trials
		ratio := 0.0
		if rec > 0 {
			ratio = iter / rec
		}
		t.AddRow(d(int64(sc.Nodes)), d(int64(k)), f1(iter), f1(rec), f2(ratio))
	}
	return t
}
