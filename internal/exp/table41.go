package exp

import (
	"cqjoin/internal/engine"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/workload"
)

// Table41 regenerates Table 4.1: a comparison of all algorithms. The first
// five columns state each protocol's defining choices; the measured columns
// run one canonical scenario and count the messages each protocol actually
// sent, making the step-sequence contrast of the thesis table observable:
//
//	phase 1: one query; eight R-tuples sharing one join value; one
//	         matching S-tuple.
//	phase 2: the same eight R-tuples inserted again (recurring values).
//
// SAI indexes the query under the left attribute (deterministically, so
// the row is reproducible); phase 2 exposes DAI-T's reindex-once rule —
// it alone sends no new join messages for recurring rewrites.
func Table41(sc Scale) *Table {
	t := &Table{
		ID:    "T4.1",
		Title: "A comparison of all algorithms",
		Note:  "static protocol properties + measured messages (phase 1: 8 R-tuples + 1 S-tuple; phase 2: same 8 R-tuples again)",
		Header: []string{"algorithm", "rewriters/query", "eval stores tuples", "eval stores rewrites",
			"notif created on", "T2 queries", "query msgs", "join msgs", "repeat join msgs", "notifications"},
	}
	static := map[engine.Algorithm][]string{
		engine.SAI:  {"1", "yes", "yes", "both arrivals", "no"},
		engine.DAIQ: {"2", "yes", "no", "rewrite arrival", "no"},
		engine.DAIT: {"2", "no", "yes", "tuple arrival", "no"},
		engine.DAIV: {"2", "yes (by value)", "no", "rewrite arrival", "yes"},
	}
	algs := mainAlgorithms()
	rows := make([][]string, len(algs))
	ForEach(len(algs), func(ai int) {
		alg := algs[ai]
		r := Setup(engine.Config{Algorithm: alg, Strategy: engine.StrategyLeft},
			Scale{Nodes: 64, Seed: sc.Seed}, workload.Params{Pairs: 1, Attrs: 2})
		gen := r.Gen
		q := query.MustParse(gen.Catalog(), "SELECT R0.a0, S0.a0 FROM R0, S0 WHERE R0.a1 = S0.a1")
		if _, err := r.Eng.Subscribe(r.Nodes[0], q); err != nil {
			panic(err)
		}
		queryMsgs := r.Net.Traffic().Messages("query")
		r.Net.Traffic().Reset()

		publishR := func() {
			for i := 0; i < 8; i++ {
				tu := relation.MustTuple(gen.LeftSchema(0), relation.N(float64(i)), relation.N(7))
				if _, err := r.Eng.Publish(r.Nodes[1+i], tu); err != nil {
					panic(err)
				}
			}
		}
		publishR()
		su := relation.MustTuple(gen.RightSchema(0), relation.N(100), relation.N(7))
		if _, err := r.Eng.Publish(r.Nodes[20], su); err != nil {
			panic(err)
		}
		joinMsgs := r.Net.Traffic().Messages("join")

		r.Net.Traffic().Reset()
		publishR()
		repeatJoins := r.Net.Traffic().Messages("join")

		row := append([]string{alg.String()}, static[alg]...)
		row = append(row, d(queryMsgs), d(joinMsgs), d(repeatJoins),
			d(int64(len(r.Eng.Notifications()))))
		rows[ai] = row
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}
