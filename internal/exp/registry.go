package exp

import (
	"fmt"
	"sort"
)

// Experiment pairs an id with its regeneration function.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) *Table
}

// All returns every experiment in thesis order.
func All() []Experiment {
	return []Experiment{
		{"T4.1", "A comparison of all algorithms", Table41},
		{"F4.8", "Recursive vs. iterative multisend", Fig48},
		{"F5.2", "Traffic cost and JFRT effect", Fig52},
		{"F5.3", "Number of indexed queries vs network traffic", Fig53},
		{"F5.4", "Index attribute selection strategies in SAI", Fig54},
		{"F5.5", "Effect of the bos ratio", Fig55},
		{"F5.6", "Replication effect on filtering load distribution", Fig56},
		{"F5.7", "Replication effect on storage load distribution", Fig57},
		{"F5.8", "Window size and queries vs total evaluator filtering load", Fig58},
		{"F5.9", "Window size and queries vs total evaluator storage load", Fig59},
		{"F5.10", "TF and TS load distribution, all algorithms", Fig510},
		{"F5.11", "Load split between indexing levels", Fig511},
		{"F5.12", "Tuple frequency vs filtering load distribution", Fig512},
		{"F5.13", "Query count vs filtering load distribution", Fig513},
		{"F5.14", "Network size vs filtering load distribution", Fig514},
		{"F5.15", "Network size vs most-loaded nodes", Fig515},
		{"F5.16", "DAI-V scaling on all dimensions", Fig516},
		{"X4.5", "Ablation: keyed DAI-V extension (traffic vs spread)", X45},
		{"X7.1", "Extension: multi-way chain joins vs arity", X71},
	}
}

// Lookup finds one experiment by id (case-sensitive, e.g. "F5.2").
func Lookup(idStr string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == idStr {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (available: %v)", idStr, ids)
}
