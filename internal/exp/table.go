// Package exp regenerates every table and figure of the paper's evaluation
// chapter. Each experiment is a function returning a Table whose rows are
// the series the corresponding thesis figure plots; cmd/joinsim prints them
// and bench_test.go wraps each one in a testing.B benchmark. The
// experiment ids follow the thesis List of Figures (see DESIGN.md §3 for
// the full index and the reconstruction caveats).
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated experiment: an id matching the thesis figure or
// table number, a caption, a header and data rows.
type Table struct {
	ID     string
	Title  string
	Note   string // reconstruction caveats, expected shape
	Header []string
	Rows   [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// PrintCSV renders the table as CSV for plotting tools: a comment line
// with the id/title, then the header and rows.
func (t *Table) PrintCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f1 formats a float with one decimal, f2 with two, f3 with three.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// d formats an integer cell.
func d(v int64) string { return fmt.Sprintf("%d", v) }
