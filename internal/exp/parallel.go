package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Deterministic parallel execution, tier 1 (DESIGN.md §8): experiment
// cells run on a bounded worker pool. Every cell owns an isolated
// Network/Clock/RNG built by its own Setup call, so concurrent cells
// cannot observe each other; tables collect per-cell rows into a slice
// indexed by declaration order and append them after the pool drains,
// making the output bit-identical to a sequential run by construction.

// parallelism holds the configured worker budget; 0 means "default to
// GOMAXPROCS". It is shared by ForEach (experiment cells) and by the
// engine's batched publish pipeline via Run.PublishTuples.
var parallelism atomic.Int64

// SetParallelism sets the worker budget. Values below 1 restore the
// default (GOMAXPROCS at time of use).
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the current worker budget.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(0..n-1) on min(n, Parallelism()) workers with atomic
// index stealing. Iterations must be independent. A panic in any iteration
// is re-raised on the caller's goroutine after all workers drain.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
