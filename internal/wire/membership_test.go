package wire

import (
	"reflect"
	"testing"
)

func TestMemberViewRoundTrip(t *testing.T) {
	views := []*MemberView{
		{Version: 0, Procs: nil},
		{Version: 1, Procs: []string{"127.0.0.1:9001"}},
		{Version: 7, Procs: []string{"127.0.0.1:9001", "127.0.0.1:9002", "host-b:9100"}},
	}
	for _, v := range views {
		var w Buffer
		EncodeMemberView(&w, v)
		if got := SizeMemberView(v); got != w.Len() {
			t.Fatalf("SizeMemberView=%d, encoding=%d", got, w.Len())
		}
		r := NewReader(w.Bytes())
		got, err := DecodeMemberView(r)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left after decode", r.Remaining())
		}
		if got.Version != v.Version || len(got.Procs) != len(v.Procs) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, v)
		}
		if len(v.Procs) > 0 && !reflect.DeepEqual(got.Procs, v.Procs) {
			t.Fatalf("procs mismatch: %v vs %v", got.Procs, v.Procs)
		}
	}
}

func TestMemberViewForgedCount(t *testing.T) {
	var w Buffer
	w.PutUvarint(3)       // version
	w.PutUvarint(1 << 30) // absurd member count
	if _, err := DecodeMemberView(NewReader(w.Bytes())); err == nil {
		t.Fatal("forged member count accepted")
	}
}
