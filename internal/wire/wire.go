// Package wire defines the binary on-the-wire encoding of the system's
// payloads: attribute values, tuples, queries and notifications. The
// simulator passes Go values between nodes for speed, but every message
// type reports its encoded size through this package so the traffic ledger
// can account bytes as well as hops — and a deployment replacing the
// in-process transport with real sockets can reuse these encodings as-is.
//
// The format is length-prefixed and self-describing at the value level:
//
//	value   := kind:uint8 (0=string, 1=number) payload
//	string  := len:uvarint bytes
//	number  := 8 bytes IEEE-754 big endian
//	tuple   := relation:string arity:uvarint attr:string... value... pubT:varint
//	query   := key:string subscriber:string ip:string insT:varint sql:string
//	notif   := querykey:string subscriber:string n:uvarint value...
//	          leftPubT:varint rightPubT:varint deliveredAt:varint
//
// Queries travel as their SQL text and are re-parsed against the catalog on
// arrival; the parser is the single source of truth for query semantics.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

const (
	kindString byte = 0
	kindNumber byte = 1
)

// Buffer accumulates an encoding. The zero Buffer is ready to use.
type Buffer struct {
	b []byte
}

// Bytes returns the encoded contents.
func (w *Buffer) Bytes() []byte { return w.b }

// Reset truncates the buffer for reuse, keeping its capacity.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// Len returns the encoded size so far.
func (w *Buffer) Len() int { return len(w.b) }

// PutUvarint appends an unsigned varint.
func (w *Buffer) PutUvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

// PutVarint appends a signed varint.
func (w *Buffer) PutVarint(v int64) {
	w.b = binary.AppendVarint(w.b, v)
}

// PutString appends a length-prefixed string.
func (w *Buffer) PutString(s string) {
	w.PutUvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// PutBytes appends a length-prefixed byte slice. It is the []byte twin of
// PutString: the two produce identical encodings, so a receiver may read
// either with String or Bytes.
func (w *Buffer) PutBytes(b []byte) {
	w.PutUvarint(uint64(len(b)))
	w.b = append(w.b, b...)
}

// PutRaw appends bytes verbatim, with no length prefix. Framing layers use
// it to reserve header space they patch after the payload is built.
func (w *Buffer) PutRaw(b []byte) {
	w.b = append(w.b, b...)
}

// Grow ensures the buffer has capacity for at least n more bytes, so a
// caller that knows an encoding's size up front (the Size* functions
// below) can avoid growth copies on the hot path.
func (w *Buffer) Grow(n int) {
	if cap(w.b)-len(w.b) >= n {
		return
	}
	nb := make([]byte, len(w.b), len(w.b)+n)
	copy(nb, w.b)
	w.b = nb
}

// PutValue appends one attribute value.
func (w *Buffer) PutValue(v relation.Value) {
	if v.Kind() == relation.String {
		w.b = append(w.b, kindString)
		w.PutString(v.Str())
		return
	}
	w.b = append(w.b, kindNumber)
	w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(v.Num()))
}

// Reader decodes an encoding produced by Buffer.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps an encoded byte slice.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset repoints the reader at b, so a long-lived Reader can decode many
// payloads without reallocating.
func (r *Reader) Reset(b []byte) {
	r.b = b
	r.off = 0
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// Varint reads a signed varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.Remaining()) {
		return "", fmt.Errorf("wire: string of %d bytes exceeds remaining %d", n, r.Remaining())
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Bytes reads a length-prefixed byte slice without copying: the returned
// slice aliases the reader's backing array and is only valid while those
// bytes are. Callers that retain the data past the backing buffer's reuse
// must copy; transient consumers (decode-and-deliver paths) avoid the
// per-message allocation String pays.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("wire: bytes of %d exceeds remaining %d", n, r.Remaining())
	}
	b := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// Value reads one attribute value.
func (r *Reader) Value() (relation.Value, error) {
	if r.Remaining() < 1 {
		return relation.Value{}, fmt.Errorf("wire: truncated value kind")
	}
	kind := r.b[r.off]
	r.off++
	switch kind {
	case kindString:
		s, err := r.String()
		if err != nil {
			return relation.Value{}, err
		}
		return relation.S(s), nil
	case kindNumber:
		if r.Remaining() < 8 {
			return relation.Value{}, fmt.Errorf("wire: truncated number")
		}
		bits := binary.BigEndian.Uint64(r.b[r.off:])
		r.off += 8
		return relation.N(math.Float64frombits(bits)), nil
	default:
		return relation.Value{}, fmt.Errorf("wire: unknown value kind %d", kind)
	}
}

// EncodeTuple appends a tuple, including its (possibly projected) schema so
// the receiver can evaluate expressions against it without catalog access.
func EncodeTuple(w *Buffer, t *relation.Tuple) {
	w.PutString(t.Relation())
	attrs := t.Schema().Attrs()
	w.PutUvarint(uint64(len(attrs)))
	for _, a := range attrs {
		w.PutString(a)
	}
	for _, a := range attrs {
		w.PutValue(t.MustValue(a))
	}
	w.PutVarint(t.PubT())
}

// DecodeTuple reads a tuple encoded by EncodeTuple.
func DecodeTuple(r *Reader) (*relation.Tuple, error) {
	rel, err := r.String()
	if err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<16 || n > uint64(r.Remaining()) {
		// Every attribute occupies at least one byte; a larger arity is a
		// forged length prefix, not a short read.
		return nil, fmt.Errorf("wire: implausible tuple arity %d", n)
	}
	attrs := make([]string, n)
	for i := range attrs {
		if attrs[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	schema, err := relation.NewSchema(rel, attrs...)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	vals := make([]relation.Value, n)
	for i := range vals {
		if vals[i], err = r.Value(); err != nil {
			return nil, err
		}
	}
	t, err := relation.NewTuple(schema, vals...)
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	pubT, err := r.Varint()
	if err != nil {
		return nil, err
	}
	return t.WithPubT(pubT), nil
}

// EncodeQuery appends a query: identity and times plus the SQL text, which
// the receiver re-parses.
func EncodeQuery(w *Buffer, q *query.Query) {
	w.PutString(q.Key())
	w.PutString(q.Subscriber())
	w.PutString(q.SubscriberIP())
	w.PutVarint(q.InsT())
	w.PutString(q.Text())
}

// DecodeQuery reads a query encoded by EncodeQuery, re-parsing its SQL
// against the catalog and restoring its identity and insertion time.
func DecodeQuery(r *Reader, catalog *relation.Catalog) (*query.Query, error) {
	key, err := r.String()
	if err != nil {
		return nil, err
	}
	sub, err := r.String()
	if err != nil {
		return nil, err
	}
	ip, err := r.String()
	if err != nil {
		return nil, err
	}
	insT, err := r.Varint()
	if err != nil {
		return nil, err
	}
	sql, err := r.String()
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(catalog, sql)
	if err != nil {
		return nil, fmt.Errorf("wire: re-parse: %w", err)
	}
	q = q.WithInsT(insT)
	return q.WithRestoredIdentity(key, sub, ip), nil
}

// The Size* functions below compute encoded lengths arithmetically,
// without materializing any bytes. They must stay field-for-field in sync
// with the Encode*/Put* counterparts above; engine/codec_test.go asserts
// Size == len(Encode) for every message type.

// SizeUvarint returns the encoded length of an unsigned varint.
func SizeUvarint(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// SizeVarint returns the encoded length of a signed (zig-zag) varint.
func SizeVarint(v int64) int {
	ux := uint64(v) << 1
	if v < 0 {
		ux = ^ux
	}
	return SizeUvarint(ux)
}

// SizeString returns a length-prefixed string's encoded size.
func SizeString(s string) int {
	return SizeUvarint(uint64(len(s))) + len(s)
}

// SizeValue returns a value's encoded size.
func SizeValue(v relation.Value) int {
	if v.Kind() == relation.String {
		return 1 + SizeString(v.Str())
	}
	return 1 + 8
}

// SizeTuple returns a tuple's encoded size without materializing it. The
// size is memoized on the tuple: tuples are immutable once stamped, and the
// same tuple value is re-sized once per hop of every delivery that carries
// it, so the ledger would otherwise pay a full walk per hop.
func SizeTuple(t *relation.Tuple) int {
	if n := t.CachedWireSize(); n > 0 {
		return n
	}
	attrs := t.Schema().Attrs()
	n := SizeString(t.Relation()) + SizeUvarint(uint64(len(attrs)))
	for _, a := range attrs {
		n += SizeString(a) + SizeValue(t.MustValue(a))
	}
	n += SizeVarint(t.PubT())
	t.SetCachedWireSize(n)
	return n
}

// SizeQuery returns a query's encoded size, memoized like SizeTuple.
func SizeQuery(q *query.Query) int {
	if n := q.CachedWireSize(); n > 0 {
		return n
	}
	n := SizeString(q.Key()) + SizeString(q.Subscriber()) + SizeString(q.SubscriberIP()) +
		SizeVarint(q.InsT()) + SizeString(q.Text())
	q.SetCachedWireSize(n)
	return n
}
