package wire

import (
	"math"
	"testing"
	"testing/quick"

	"cqjoin/internal/query"
	"cqjoin/internal/relation"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var w Buffer
	w.PutUvarint(300)
	w.PutVarint(-42)
	w.PutString("hello world")
	w.PutValue(relation.S("s"))
	w.PutValue(relation.N(3.25))

	r := NewReader(w.Bytes())
	if v, err := r.Uvarint(); err != nil || v != 300 {
		t.Fatalf("uvarint = %d, %v", v, err)
	}
	if v, err := r.Varint(); err != nil || v != -42 {
		t.Fatalf("varint = %d, %v", v, err)
	}
	if s, err := r.String(); err != nil || s != "hello world" {
		t.Fatalf("string = %q, %v", s, err)
	}
	if v, err := r.Value(); err != nil || !v.Equal(relation.S("s")) {
		t.Fatalf("value = %v, %v", v, err)
	}
	if v, err := r.Value(); err != nil || !v.Equal(relation.N(3.25)) {
		t.Fatalf("value = %v, %v", v, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(s string, n float64, isStr bool) bool {
		var v relation.Value
		if isStr {
			v = relation.S(s)
		} else {
			if math.IsNaN(n) {
				return true // NaN never compares equal; not a legal value
			}
			v = relation.N(n)
		}
		var w Buffer
		w.PutValue(v)
		got, err := NewReader(w.Bytes()).Value()
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	s := relation.MustSchema("Document", "Id", "Title", "AuthorId")
	tu := relation.MustTuple(s, relation.N(1), relation.S("P2P Joins"), relation.N(17)).WithPubT(99)
	var w Buffer
	EncodeTuple(&w, tu)
	got, err := DecodeTuple(NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("DecodeTuple: %v", err)
	}
	if got.Relation() != "Document" || got.PubT() != 99 {
		t.Fatalf("tuple identity wrong: %s @%d", got, got.PubT())
	}
	for _, a := range s.Attrs() {
		if !got.MustValue(a).Equal(tu.MustValue(a)) {
			t.Fatalf("attribute %s mismatch", a)
		}
	}
	if w.Len() != SizeTuple(tu) {
		t.Fatalf("SizeTuple = %d, want %d", SizeTuple(tu), w.Len())
	}
}

func TestQueryRoundTrip(t *testing.T) {
	catalog := relation.MustCatalog(
		relation.MustSchema("R", "A", "B"),
		relation.MustSchema("S", "D", "E"),
	)
	q := query.MustParse(catalog, `SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.D >= 2`).
		WithIdentity("node9", "sim://abc", 4).WithInsT(123)

	var w Buffer
	EncodeQuery(&w, q)
	got, err := DecodeQuery(NewReader(w.Bytes()), catalog)
	if err != nil {
		t.Fatalf("DecodeQuery: %v", err)
	}
	if got.Key() != q.Key() || got.Subscriber() != q.Subscriber() || got.SubscriberIP() != q.SubscriberIP() {
		t.Fatalf("identity mismatch: %q %q %q", got.Key(), got.Subscriber(), got.SubscriberIP())
	}
	if got.InsT() != 123 {
		t.Fatalf("insT = %d", got.InsT())
	}
	if got.ConditionKey() != q.ConditionKey() {
		t.Fatalf("condition mismatch: %q vs %q", got.ConditionKey(), q.ConditionKey())
	}
	if len(got.Filters()) != 1 {
		t.Fatalf("filters lost: %v", got.Filters())
	}
	if w.Len() != SizeQuery(q) {
		t.Fatalf("SizeQuery = %d, want %d", SizeQuery(q), w.Len())
	}
}

func TestDecodeQueryBadSQL(t *testing.T) {
	catalog := relation.MustCatalog(relation.MustSchema("R", "A"))
	var w Buffer
	w.PutString("k")
	w.PutString("sub")
	w.PutString("ip")
	w.PutVarint(1)
	w.PutString("not sql at all")
	if _, err := DecodeQuery(NewReader(w.Bytes()), catalog); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func TestTruncationErrors(t *testing.T) {
	s := relation.MustSchema("R", "A", "B")
	tu := relation.MustTuple(s, relation.N(1), relation.S("x"))
	var w Buffer
	EncodeTuple(&w, tu)
	full := w.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeTuple(NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = DecodeTuple(NewReader(b))
		r := NewReader(b)
		_, _ = r.Value()
		_, _ = r.String()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTupleImplausibleArity(t *testing.T) {
	var w Buffer
	w.PutString("R")
	w.PutUvarint(1 << 40)
	if _, err := DecodeTuple(NewReader(w.Bytes())); err == nil {
		t.Fatal("absurd arity accepted")
	}
	var w2 Buffer
	w2.PutString("R")
	w2.PutUvarint(0)
	if _, err := DecodeTuple(NewReader(w2.Bytes())); err == nil {
		t.Fatal("zero arity accepted")
	}
}

func TestSizeHelpers(t *testing.T) {
	if SizeString("abc") != 4 { // 1-byte length + 3 bytes
		t.Fatalf("SizeString = %d", SizeString("abc"))
	}
	if SizeValue(relation.N(1)) != 9 { // kind + 8 bytes
		t.Fatalf("SizeValue(number) = %d", SizeValue(relation.N(1)))
	}
	if SizeValue(relation.S("ab")) != 4 { // kind + len + 2
		t.Fatalf("SizeValue(string) = %d", SizeValue(relation.S("ab")))
	}
}
