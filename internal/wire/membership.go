package wire

import "fmt"

// MemberView is the daemon membership gossip payload: the authoritative
// list of overlay processes at a given version, stamped with the address
// of the process that originated the change. Views are totally ordered by
// (Version, ring position of Origin): version first, and concurrent
// same-version views — two processes each incrementing the same base in
// the same instant — are arbitrated by the deterministic hash order of
// their originators, so every process picks the same winner with no
// coordination. Replayed or reordered views are harmless: a receiver
// adopts a view iff it succeeds the one it holds. Procs is kept sorted by
// the daemon layer so that equal views are byte-identical on the wire and
// node ownership (successor-of-hash over Procs) is deterministic for
// every holder of the same view.
type MemberView struct {
	Version uint64
	Origin  string
	Procs   []string
}

// EncodeMemberView appends v's wire form to w.
//
//wire:field enc MemberView Version Origin Procs
func EncodeMemberView(w *Buffer, v *MemberView) {
	w.PutUvarint(v.Version)
	w.PutString(v.Origin)
	w.PutUvarint(uint64(len(v.Procs)))
	for _, p := range v.Procs {
		w.PutString(p)
	}
}

// SizeMemberView reports the exact encoded length of v.
//
//wire:field size MemberView Version Origin Procs
func SizeMemberView(v *MemberView) int {
	n := SizeUvarint(v.Version) + SizeString(v.Origin) + SizeUvarint(uint64(len(v.Procs)))
	for _, p := range v.Procs {
		n += SizeString(p)
	}
	return n
}

// DecodeMemberView reads one view encoded by EncodeMemberView.
//
//wire:field dec MemberView Version Origin Procs
func DecodeMemberView(r *Reader) (*MemberView, error) {
	version, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	origin, err := r.String()
	if err != nil {
		return nil, err
	}
	count, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(r.Remaining()) {
		return nil, fmt.Errorf("wire: member count %d exceeds %d remaining bytes", count, r.Remaining())
	}
	procs := make([]string, count)
	for i := range procs {
		if procs[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	return &MemberView{Version: version, Origin: origin, Procs: procs}, nil
}
