package chord

import (
	"fmt"
	"sort"
	"sync"

	"cqjoin/internal/id"
	"cqjoin/internal/metrics"
	"cqjoin/internal/obs"
	"cqjoin/internal/sim"
)

// Config parameterizes a simulated overlay.
type Config struct {
	// SuccessorListLen is the length r of each node's successor list
	// (Section 2.2: "in practice even small values of r are enough").
	// Zero means the default of 8.
	SuccessorListLen int
	// Traffic receives hop/message accounting. Nil allocates a fresh ledger.
	Traffic *metrics.Traffic
	// Clock is the logical clock shared by the network. Nil allocates one.
	Clock *sim.Clock
	// Obs is the observability registry. When set, the traffic ledger's
	// families are registered on it, the routing layer records per-kind
	// send counters and hop histograms ("chord.*"), and the clock reports
	// its tick metrics ("sim.clock.*"). Nil (the default) disables the
	// layer at zero cost — same-seed runs are bit-identical either way,
	// because recording never feeds back into routing decisions.
	Obs *obs.Registry
}

// netObs holds the overlay's pre-created metric handles. All fields are
// nil when observability is disabled; every recording site tolerates that
// via the obs package's nil-receiver no-ops.
type netObs struct {
	lookups       *obs.Counter
	lookupHops    *obs.Histogram
	sends         *obs.CounterVec // per message kind
	sendHops      *obs.Histogram
	directSends   *obs.Counter
	multisends    *obs.Counter
	multisendSize *obs.Histogram
	multisendHops *obs.Histogram
	routeFailures *obs.Counter
	deliveries    *obs.CounterVec // per message kind, at the delivery choke point
	deliveryMiss  *obs.Counter    // dropped / dead-destination deliveries
	wireBytes     *obs.Histogram  // per-message encoded size (the codec path)
	joins, exits  *obs.Counter    // membership churn
}

// hopBuckets covers O(log N) lookups up to thesis scale plus a tail for
// churn-stressed successor walks.
var hopBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128}

func newNetObs(reg *obs.Registry) netObs {
	if reg == nil {
		return netObs{}
	}
	return netObs{
		lookups:       reg.Counter("chord.lookups"),
		lookupHops:    reg.Histogram("chord.lookup.hops", hopBuckets...),
		sends:         reg.CounterVec("chord.sends"),
		sendHops:      reg.Histogram("chord.send.hops", hopBuckets...),
		directSends:   reg.Counter("chord.direct_sends"),
		multisends:    reg.Counter("chord.multisends"),
		multisendSize: reg.Histogram("chord.multisend.batch", 1, 4, 16, 64, 256, 1024),
		multisendHops: reg.Histogram("chord.multisend.hops", hopBuckets...),
		routeFailures: reg.Counter("chord.route_failures"),
		deliveries:    reg.CounterVec("chord.deliveries"),
		deliveryMiss:  reg.Counter("chord.delivery_misses"),
		wireBytes:     reg.Histogram("chord.wire_bytes", 16, 64, 256, 1024, 4096, 16384),
		joins:         reg.Counter("chord.joins"),
		exits:         reg.Counter("chord.exits"),
	}
}

const defaultSuccessorListLen = 8

// Network is a simulated Chord overlay: the set of alive nodes, a sorted
// ring index used for O(log N) membership bookkeeping (never on the routing
// data path — routing always walks finger tables), the shared logical clock
// and the traffic ledger.
type Network struct {
	mu    sync.RWMutex
	byKey map[string]*Node
	ring  []*Node // alive nodes in ascending identifier order

	succListLen int
	traffic     *metrics.Traffic
	clock       *sim.Clock
	obsReg      *obs.Registry
	obs         netObs

	icMu        sync.RWMutex
	interceptor Interceptor

	// trMu guards the pluggable delivery transport (transport.go). simT is
	// the pre-built in-process default, created once so the hot path never
	// boxes a fresh interface value.
	trMu   sync.RWMutex
	custom Transport
	simT   Transport
}

// SetInterceptor installs (or, with nil, removes) the delivery interceptor.
// Every subsequent message delivery — routed, direct or relayed inside a
// multisend — passes through it. There is exactly one slot: fault layers
// that compose should wrap each other before installing.
func (net *Network) SetInterceptor(ic Interceptor) {
	net.icMu.Lock()
	defer net.icMu.Unlock()
	net.interceptor = ic
}

// Interceptor returns the installed delivery interceptor, or nil.
func (net *Network) Interceptor() Interceptor {
	net.icMu.RLock()
	defer net.icMu.RUnlock()
	return net.interceptor
}

// New creates an empty overlay.
func New(cfg Config) *Network {
	if cfg.SuccessorListLen <= 0 {
		cfg.SuccessorListLen = defaultSuccessorListLen
	}
	if cfg.Traffic == nil {
		// Hang the ledger's families on the shared registry so one
		// snapshot covers the paper's metrics and the substrate's.
		cfg.Traffic = metrics.NewTraffic(cfg.Obs)
	}
	if cfg.Clock == nil {
		cfg.Clock = &sim.Clock{}
	}
	cfg.Clock.Instrument(cfg.Obs)
	net := &Network{
		byKey:       make(map[string]*Node),
		succListLen: cfg.SuccessorListLen,
		traffic:     cfg.Traffic,
		clock:       cfg.Clock,
		obsReg:      cfg.Obs,
		obs:         newNetObs(cfg.Obs),
	}
	net.simT = &simTransport{net: net}
	return net
}

// Traffic returns the network's traffic ledger.
func (net *Network) Traffic() *metrics.Traffic { return net.traffic }

// Obs returns the observability registry the overlay records into, or nil
// when the layer is disabled.
func (net *Network) Obs() *obs.Registry { return net.obsReg }

// Clock returns the network's logical clock.
func (net *Network) Clock() *sim.Clock { return net.clock }

// Size returns the number of alive nodes.
func (net *Network) Size() int {
	net.mu.RLock()
	defer net.mu.RUnlock()
	return len(net.ring)
}

// Nodes returns the alive nodes in ascending identifier order.
func (net *Network) Nodes() []*Node {
	net.mu.RLock()
	defer net.mu.RUnlock()
	out := make([]*Node, len(net.ring))
	copy(out, net.ring)
	return out
}

// NodeByKey returns the alive node with the given key, or nil.
func (net *Network) NodeByKey(key string) *Node {
	net.mu.RLock()
	defer net.mu.RUnlock()
	n := net.byKey[key]
	if n == nil || !n.Alive() {
		return nil
	}
	return n
}

// Join adds a node with the given key to the overlay, exactly as Section 2.2
// describes the end state of a completed join: the new node discovers its
// successor, neighbor pointers are corrected, the node builds its finger
// table, and its successor transfers the keys in (pred(n), n] to it.
//
// The routing cost of the join lookup is charged to the "chord-join" kind.
// Returns an error when the key is already present.
func (net *Network) Join(key string) (*Node, error) {
	return net.JoinAt(key, id.Hash(key))
}

// JoinAt joins a node at an explicitly chosen ring position instead of
// Hash(key). This is the identifier-moving mechanism of Section 4.7.2
// (Figure 4.7): an underloaded node can place itself immediately at a hot
// identifier and take over its arc. Notifications for an offline
// subscriber are still addressed to Hash(key), so a node that moved away
// from its natural position relies on the direct-IP delivery path while
// online.
func (net *Network) JoinAt(key string, nid id.ID) (*Node, error) {
	n := &Node{
		net:   net,
		key:   key,
		ip:    fmt.Sprintf("sim://%s", nid.Short()),
		id:    nid,
		succs: make([]*Node, 0, net.succListLen),
	}
	n.alive.Store(true)

	net.mu.Lock()
	if old, ok := net.byKey[key]; ok && old.Alive() {
		net.mu.Unlock()
		return nil, fmt.Errorf("chord: join %q: key already in overlay", key)
	}
	if i := net.ringIndexLocked(nid); i < len(net.ring) && net.ring[i].id == nid {
		net.mu.Unlock()
		return nil, fmt.Errorf("chord: join %q: ring position %s already occupied by %s", key, nid.Short(), net.ring[i])
	}
	// Pick an arbitrary alive bootstrap before inserting n.
	var bootstrap *Node
	if len(net.ring) > 0 {
		bootstrap = net.ring[0]
	}
	net.insertLocked(n)
	net.mu.Unlock()

	if bootstrap != nil {
		// Charge the join lookup: finding Successor(id(n)) from the
		// bootstrap node. The ring index already contains n, so route from
		// the bootstrap's view using fingers built before insertion; cost is
		// what matters here, correctness of pointers is established below.
		_, hops, err := bootstrap.route(nid)
		if err == nil {
			net.traffic.Record("chord-join", hops)
		} else {
			net.traffic.RecordHopsOnly("chord-join", hops)
		}
	}

	net.obs.joins.Inc()
	net.repairAround(n)
	net.buildFingers(n)

	// Successor hands over the keys the new node is now responsible for.
	succ := n.Successor()
	if succ != n {
		lo := n.Predecessor()
		var loID id.ID
		if lo != nil {
			loID = lo.ID()
		} else {
			loID = succ.ID()
		}
		if h, ok := succ.Handler().(KeyTransferrer); ok {
			h.TransferKeys(succ, n, loID, n.ID())
		}
	}
	return n, nil
}

// JoinProtocol adds a node to the overlay using only the join protocol of
// Zave's corrected Chord, with none of JoinAt's oracle repairs: the joiner
// looks up its successor through a bootstrap node and initializes its
// successor list from it; its predecessor stays nil, its finger table
// empty (routing falls back on the successor list until fix-fingers fills
// it). The ring splice and the key hand-off happen when stabilization next
// runs — the joiner notifies its successor, the successor adopts it and
// transfers the keys in (oldPred, joiner] via the KeyTransferrer seam.
//
// The membership index is still updated immediately, but only as the test
// oracle (OracleSuccessor, RingIntact); the routing data path never reads
// it.
func (net *Network) JoinProtocol(key string) (*Node, error) {
	nid := id.Hash(key)
	n := &Node{
		net:   net,
		key:   key,
		ip:    fmt.Sprintf("sim://%s", nid.Short()),
		id:    nid,
		succs: make([]*Node, 0, net.succListLen),
	}
	n.alive.Store(true)

	net.mu.Lock()
	if old, ok := net.byKey[key]; ok && old.Alive() {
		net.mu.Unlock()
		return nil, fmt.Errorf("chord: join %q: key already in overlay", key)
	}
	if i := net.ringIndexLocked(nid); i < len(net.ring) && net.ring[i].id == nid {
		net.mu.Unlock()
		return nil, fmt.Errorf("chord: join %q: ring position %s already occupied by %s", key, nid.Short(), net.ring[i])
	}
	var bootstrap *Node
	if len(net.ring) > 0 {
		bootstrap = net.ring[0]
	}
	net.insertLocked(n)
	net.mu.Unlock()
	net.obs.joins.Inc()

	if bootstrap == nil {
		// First node: a singleton ring, its own successor.
		return n, nil
	}
	// Find Successor(id(n)) from the bootstrap. No pointer anywhere
	// references n yet, so the lookup lands on the node that owned n's
	// identifier before the join — exactly the successor the protocol
	// wants. The lookup hops are charged like any join lookup.
	succ, hops, err := bootstrap.route(nid)
	if err != nil || succ == n || !succ.Alive() {
		net.traffic.RecordHopsOnly("chord-join", hops)
		// The aborted joiner must not linger in the index: nothing points
		// at it, and leaving it "alive" with no successor would strand the
		// ring oracle on a node the protocol never spliced in.
		net.removeQuiet(n)
		return nil, fmt.Errorf("chord: join %q: successor lookup failed: %w", key, err)
	}
	net.traffic.Record("chord-join", hops)

	// Initialize the successor list from the successor's view, and learn a
	// tentative predecessor from it as well — the successor's current
	// predecessor always precedes the joiner (the lookup proved the joiner
	// lies in (succ.pred, succ]). Without it the nil-predecessor rule would
	// make the joiner claim the whole ring until its predecessor's first
	// notify. Everything else converges through stabilize/notify/
	// fix-fingers.
	list := make([]*Node, 0, net.succListLen)
	list = append(list, succ)
	for _, s := range succ.SuccessorList() {
		if len(list) >= net.succListLen {
			break
		}
		if s != nil && s.Alive() && s != n {
			list = append(list, s)
		}
	}
	pred := succ.Predecessor()
	n.mu.Lock()
	n.succs = list
	if pred != nil && pred.Alive() && pred != n {
		n.pred = pred
	}
	n.mu.Unlock()
	return n, nil
}

// LeaveProtocol removes a node voluntarily using only the protocol: the
// departing node hands its keys to its successor, tells its successor to
// adopt its predecessor, and points its predecessor's successor chain past
// itself. No oracle repairs run; remaining stale pointers (other nodes'
// fingers and successor lists) heal through stabilization.
func (net *Network) LeaveProtocol(n *Node) {
	if !n.Alive() {
		return
	}
	succ := n.Successor()
	pred := n.Predecessor()
	if succ != n && succ != nil {
		if h, ok := n.Handler().(KeyTransferrer); ok {
			// Everything n stored now belongs to its successor.
			h.TransferKeys(n, succ, n.ID(), n.ID())
		}
	}
	net.removeQuiet(n)
	if succ == nil || succ == n || !succ.Alive() {
		return
	}
	// Courtesy messages of a polite leave: the successor drops its pointer
	// to n and hears from n's predecessor immediately instead of waiting a
	// stabilization round.
	succ.CheckPredecessor()
	if pred != nil && pred.Alive() {
		succ.notify(pred)
	}
}

// FailProtocol removes a node abruptly without any repair at all — not
// even the neighbor corrections Network.Fail performs. Detection is left
// entirely to CheckPredecessor and successor-list failover, which is what
// the protocol churn tests exercise.
func (net *Network) FailProtocol(n *Node) {
	if !n.Alive() {
		return
	}
	net.removeQuiet(n)
}

// removeQuiet takes n out of the membership index and marks it dead,
// leaving every pointer that references it stale. The protocol heals them.
func (net *Network) removeQuiet(n *Node) {
	net.obs.exits.Inc()
	net.mu.Lock()
	defer net.mu.Unlock()
	n.alive.Store(false)
	delete(net.byKey, n.key)
	i := net.ringIndexLocked(n.id)
	if i < len(net.ring) && net.ring[i] == n {
		net.ring = append(net.ring[:i], net.ring[i+1:]...)
	}
}

// AddNodes joins count nodes named <prefix>0 .. <prefix>(count-1) and then
// rebuilds all pointers exactly. It is the fast path for constructing the
// large static networks of the experiments (up to 10^4 nodes).
func (net *Network) AddNodes(prefix string, count int) []*Node {
	nodes := make([]*Node, 0, count)
	net.mu.Lock()
	for i := 0; i < count; i++ {
		key := fmt.Sprintf("%s%d", prefix, i)
		if _, ok := net.byKey[key]; ok {
			continue
		}
		nid := id.Hash(key)
		n := &Node{
			net: net,
			key: key,
			ip:  fmt.Sprintf("sim://%s", nid.Short()),
			id:  nid,
		}
		n.alive.Store(true)
		net.insertLocked(n)
		nodes = append(nodes, n)
	}
	net.mu.Unlock()
	net.RepairAll()
	return nodes
}

// Leave removes a node voluntarily (Section 2.2): it transfers its keys to
// its successor and neighbor pointers are corrected.
func (net *Network) Leave(n *Node) {
	if !n.Alive() {
		return
	}
	succ := n.Successor()
	pred := n.Predecessor()
	if succ != n && succ != nil {
		if h, ok := n.Handler().(KeyTransferrer); ok {
			// Everything n stored now belongs to its successor.
			h.TransferKeys(n, succ, n.ID(), n.ID())
		}
	}
	net.remove(n)
	if succ != nil && succ.Alive() {
		net.repairAround(succ)
	} else if pred != nil && pred.Alive() {
		net.repairAround(pred)
	}
}

// Fail removes a node abruptly, without key transfer, modelling a crash.
// Routing recovers through successor lists; call RepairAll (or run the
// stabilization protocol) to restore exact pointers.
func (net *Network) Fail(n *Node) {
	if !n.Alive() {
		return
	}
	net.remove(n)
}

func (net *Network) remove(n *Node) {
	net.obs.exits.Inc()
	net.mu.Lock()
	defer net.mu.Unlock()
	n.alive.Store(false)
	delete(net.byKey, n.key)
	i := net.ringIndexLocked(n.id)
	if i < len(net.ring) && net.ring[i] == n {
		net.ring = append(net.ring[:i], net.ring[i+1:]...)
	}
	// Correct the immediate neighbors' pointers so successor chains stay
	// valid, as Chord's stabilization would within one round.
	if len(net.ring) == 0 {
		return
	}
	succIdx := net.ringIndexLocked(n.id) % len(net.ring)
	succ := net.ring[succIdx]
	predIdx := (succIdx - 1 + len(net.ring)) % len(net.ring)
	pred := net.ring[predIdx]
	pred.mu.Lock()
	pred.succs = net.successorsOfLocked(predIdx)
	pred.mu.Unlock()
	succ.mu.Lock()
	succ.pred = pred
	succ.mu.Unlock()
}

// insertLocked adds n to the membership index. Callers hold net.mu.
func (net *Network) insertLocked(n *Node) {
	net.byKey[n.key] = n
	i := net.ringIndexLocked(n.id)
	net.ring = append(net.ring, nil)
	copy(net.ring[i+1:], net.ring[i:])
	net.ring[i] = n
}

// ringIndexLocked returns the position of the first ring node with
// identifier >= k. Callers hold net.mu (read or write).
func (net *Network) ringIndexLocked(k id.ID) int {
	return sort.Search(len(net.ring), func(i int) bool {
		return !net.ring[i].id.Less(k)
	})
}

// OracleSuccessor returns Successor(k) computed from the membership index.
// It is the ground truth used by tests and by exact pointer repair; the
// message data path never calls it.
func (net *Network) OracleSuccessor(k id.ID) *Node {
	net.mu.RLock()
	defer net.mu.RUnlock()
	if len(net.ring) == 0 {
		return nil
	}
	i := net.ringIndexLocked(k) % len(net.ring)
	return net.ring[i]
}

// successorsOfLocked returns the successor list for the node at ring index
// i. Callers hold net.mu.
func (net *Network) successorsOfLocked(i int) []*Node {
	n := len(net.ring)
	r := net.succListLen
	if r > n-1 {
		r = n - 1
	}
	if r == 0 {
		// Singleton ring: a node is its own successor.
		return []*Node{net.ring[i]}
	}
	out := make([]*Node, 0, r)
	for j := 1; j <= r; j++ {
		out = append(out, net.ring[(i+j)%n])
	}
	return out
}

// repairAround rebuilds exact predecessor/successor pointers for n and its
// ring neighbors (the end state one stabilization round would reach).
func (net *Network) repairAround(n *Node) {
	net.mu.RLock()
	defer net.mu.RUnlock()
	i := net.ringIndexLocked(n.id)
	if i >= len(net.ring) || net.ring[i] != n {
		return
	}
	cnt := len(net.ring)
	// Fix n, its predecessor and the nodes whose successor lists now
	// include n (the r nodes preceding it).
	for d := -net.succListLen; d <= 1; d++ {
		j := ((i+d)%cnt + cnt) % cnt
		m := net.ring[j]
		m.mu.Lock()
		m.pred = net.ring[((j-1)%cnt+cnt)%cnt]
		if m.pred == m {
			m.pred = nil
		}
		m.succs = net.successorsOfLocked(j)
		m.mu.Unlock()
	}
}

// buildFingers computes n's exact finger table from the membership index.
func (net *Network) buildFingers(n *Node) {
	net.mu.RLock()
	defer net.mu.RUnlock()
	if len(net.ring) == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for j := 0; j < id.Bits; j++ {
		start := n.id.AddPow2(uint(j))
		i := net.ringIndexLocked(start) % len(net.ring)
		n.fingers[j] = net.ring[i]
	}
}

// MoveNode re-positions an alive node at a new ring identifier — the
// load-balancing move of Section 4.7.2 (Figure 4.7). The node leaves
// voluntarily (handing its stored keys to its successor) and immediately
// rejoins at newID (receiving the keys of its new arc). The returned node
// replaces the old one; the old *Node value is dead.
func (net *Network) MoveNode(n *Node, newID id.ID) (*Node, error) {
	if !n.Alive() {
		return nil, fmt.Errorf("chord: move of departed node %s", n)
	}
	key := n.Key()
	handler := n.Handler()
	net.Leave(n)
	moved, err := net.JoinAt(key, newID)
	if err != nil {
		return nil, err
	}
	// Reinstall the old handler before the join hand-off is requested by
	// the application layer; chord's own hand-off already ran inside
	// JoinAt against whatever handler the successor had.
	moved.SetHandler(handler)
	return moved, nil
}

// RepairAll rebuilds exact predecessor pointers, successor lists and finger
// tables for every node — the fixed point the periodic stabilization
// protocol converges to. Experiments on static networks call it once after
// construction.
func (net *Network) RepairAll() {
	net.mu.RLock()
	defer net.mu.RUnlock()
	cnt := len(net.ring)
	for i, n := range net.ring {
		n.mu.Lock()
		if cnt > 1 {
			n.pred = net.ring[((i-1)%cnt+cnt)%cnt]
		} else {
			n.pred = nil
		}
		n.succs = net.successorsOfLocked(i)
		for j := 0; j < id.Bits; j++ {
			start := n.id.AddPow2(uint(j))
			k := net.ringIndexLocked(start) % cnt
			n.fingers[j] = net.ring[k]
		}
		n.mu.Unlock()
	}
}
