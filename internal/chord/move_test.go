package chord

import (
	"math/rand"
	"testing"

	"cqjoin/internal/id"
)

func TestJoinAtExplicitPosition(t *testing.T) {
	net := buildNet(t, 32)
	target := id.Hash("R+hotattr")
	n, err := net.JoinAt("helper", target)
	if err != nil {
		t.Fatalf("JoinAt: %v", err)
	}
	if n.ID() != target {
		t.Fatalf("joined at %s, want %s", n.ID().Short(), target.Short())
	}
	// The helper now owns the hot identifier.
	if got := net.OracleSuccessor(target); got != n {
		t.Fatalf("owner of target = %s, want helper", got)
	}
	if !n.OwnsKey(target) {
		t.Fatal("helper does not own the target key")
	}
	// Routing from everywhere reaches it.
	for i := 0; i < 20; i++ {
		src := net.Nodes()[i]
		dst, _, err := src.route(target)
		if err != nil || dst != n {
			t.Fatalf("route to target from %s: dst=%v err=%v", src, dst, err)
		}
	}
}

func TestMoveNode(t *testing.T) {
	net := buildNet(t, 32)
	victim := net.Nodes()[5]
	key := victim.Key()
	target := id.Hash("S+E")
	moved, err := net.MoveNode(victim, target)
	if err != nil {
		t.Fatalf("MoveNode: %v", err)
	}
	if victim.Alive() {
		t.Fatal("old incarnation still alive")
	}
	if !moved.Alive() || moved.Key() != key || moved.ID() != target {
		t.Fatalf("moved node wrong: key=%s id=%s", moved.Key(), moved.ID().Short())
	}
	if net.Size() != 32 {
		t.Fatalf("size = %d, want 32", net.Size())
	}
	// The ring remains exact.
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		var k id.ID
		rng.Read(k[:])
		src := net.Nodes()[rng.Intn(net.Size())]
		got, _, err := src.route(k)
		if err != nil {
			t.Fatalf("route after move: %v", err)
		}
		if want := net.OracleSuccessor(k); got != want {
			t.Fatalf("route after move: got %s want %s", got, want)
		}
	}
}

func TestMoveNodePreservesHandler(t *testing.T) {
	net := buildNet(t, 16)
	rec := newRecorder()
	victim := net.Nodes()[3]
	victim.SetHandler(rec)
	moved, err := net.MoveNode(victim, id.Hash("somewhere"))
	if err != nil {
		t.Fatalf("MoveNode: %v", err)
	}
	if moved.Handler() == nil {
		t.Fatal("handler lost on move")
	}
	moved.net.Nodes()[0].DirectSend(testMsg{kind: "m"}, moved)
	if rec.count() != 1 {
		t.Fatal("moved node's handler not invoked")
	}
}

func TestMoveDeadNodeRejected(t *testing.T) {
	net := buildNet(t, 8)
	n := net.Nodes()[0]
	net.Fail(n)
	if _, err := net.MoveNode(n, id.Hash("x")); err == nil {
		t.Fatal("moving a dead node accepted")
	}
}

func TestJoinAtOccupiedPositionRejected(t *testing.T) {
	net := buildNet(t, 8)
	target := id.Hash("hot")
	if _, err := net.JoinAt("first", target); err != nil {
		t.Fatalf("JoinAt: %v", err)
	}
	if _, err := net.JoinAt("second", target); err == nil {
		t.Fatal("duplicate ring position accepted")
	}
}
