package chord

// Transport is the pluggable delivery layer under the routing algorithms:
// once Send/DirectSend/Multisend have resolved which node a message must
// reach, the transport moves it there and reports the synchronous ack the
// reliability layer retries on.
//
// Two implementations exist. The default simTransport below delivers
// in-process through the chaos interceptor choke point, keeping the
// simulator's bit-exact determinism. internal/transport provides a real
// TCP transport for multi-process overlays; it re-encodes every message
// through the engine codecs and delivers it on the owning process via
// Network.DeliverLocal.
//
// Contract: Deliver returns true only when the destination's handler ran
// (at least once) before Deliver returned — the ack semantics the engine's
// retry layer (reliable.go) depends on. DeliverBatch delivers msgs to one
// destination in order and returns one ack per message; it exists so a
// remote transport can move a whole multisend leg in a single frame.
// Implementations must tolerate reentrancy: handlers send new messages
// from inside a delivery.
type Transport interface {
	Deliver(from, dst *Node, msg Message) bool
	DeliverBatch(from, dst *Node, msgs []Message) []bool
}

// simTransport is the in-process default: hand the message pointer to the
// destination's handler, optionally through the fault-injection
// interceptor. It is exactly the delivery path the simulator always had —
// installing no custom transport leaves every same-seed run bit-identical.
type simTransport struct {
	net *Network
}

func (t *simTransport) Deliver(from, dst *Node, msg Message) bool {
	forward := func() bool {
		if !dst.Alive() {
			return false
		}
		if h := dst.Handler(); h != nil {
			h.HandleMessage(dst, msg)
		}
		return true
	}
	if ic := t.net.Interceptor(); ic != nil {
		return ic.Deliver(from, dst, msg, forward) > 0
	}
	return forward()
}

func (t *simTransport) DeliverBatch(from, dst *Node, msgs []Message) []bool {
	acks := make([]bool, len(msgs))
	for i, m := range msgs {
		acks[i] = t.Deliver(from, dst, m)
	}
	return acks
}

// SetTransport installs (or, with nil, restores the simulated default)
// delivery transport. Install before any traffic flows; the routing and
// accounting layers above the transport are unchanged either way.
func (net *Network) SetTransport(t Transport) {
	net.trMu.Lock()
	defer net.trMu.Unlock()
	net.custom = t
}

// Transport returns the delivery transport in effect: the installed custom
// transport, or the in-process simulated default.
func (net *Network) Transport() Transport {
	net.trMu.RLock()
	defer net.trMu.RUnlock()
	if net.custom != nil {
		return net.custom
	}
	return net.simT
}

// DeliverLocal hands msg straight to the alive node with the given key on
// this process — the receive path of a remote transport, which has already
// crossed its own wire and decoded the message. It bypasses the
// interceptor: fault injection models the simulated network, and a remote
// transport has real packet loss of its own. Returns false when the node
// is unknown or dead (the remote sender's missing ack).
func (net *Network) DeliverLocal(dstKey string, msg Message) bool {
	dst := net.NodeByKey(dstKey)
	if dst == nil {
		return false
	}
	if h := dst.Handler(); h != nil {
		h.HandleMessage(dst, msg)
	}
	return true
}
