package chord

import (
	"strings"
	"testing"
)

// CheckRing is the invariant oracle the churn suites and the daemon's
// stats op gate on, so it gets direct tests: a healthy overlay passes, a
// mid-join appendage is legal but not converged, and each class of pointer
// corruption is named in the report.

func TestCheckRingHealthy(t *testing.T) {
	net := New(Config{})
	net.AddNodes("h", 12)
	rep := CheckRing(net)
	if !rep.OK() || !rep.Converged() {
		t.Fatalf("healthy ring reported broken: %s", rep)
	}
	if rep.Alive != 12 || rep.CycleLen != 12 || rep.Appendages != 0 {
		t.Fatalf("healthy ring report: %s", rep)
	}
	if rep.Err() != nil {
		t.Fatalf("Err on a healthy ring: %v", rep.Err())
	}
}

// A protocol joiner that has not stabilized yet hangs off the cycle as an
// appendage: legal (Connected Appendages) but not converged.
func TestCheckRingMidJoinAppendage(t *testing.T) {
	net := New(Config{})
	net.AddNodes("a", 8)
	if _, err := net.JoinProtocol("appendage"); err != nil {
		t.Fatalf("JoinProtocol: %v", err)
	}
	rep := CheckRing(net)
	if !rep.OK() {
		t.Fatalf("mid-join overlay reported broken: %s", rep)
	}
	if rep.Converged() || rep.Appendages != 1 || rep.CycleLen != 8 {
		t.Fatalf("mid-join report: %s", rep)
	}
	net.StabilizeAll(2)
	if rep := CheckRing(net); !rep.Converged() {
		t.Fatalf("overlay did not converge after stabilization: %s", rep)
	}
}

// Two disjoint cycles violate At Most One Ring: the walk from one half
// never reaches the cycle the other half found.
func TestCheckRingDetectsSecondRing(t *testing.T) {
	net := New(Config{})
	net.AddNodes("s", 6)
	nodes := net.Nodes() // ring order
	half := len(nodes) / 2
	wire := func(group []*Node) {
		for i, n := range group {
			next := group[(i+1)%len(group)]
			n.mu.Lock()
			n.succs = []*Node{next}
			n.mu.Unlock()
		}
	}
	wire(nodes[:half])
	wire(nodes[half:])
	rep := CheckRing(net)
	if rep.OK() {
		t.Fatalf("two disjoint cycles passed: %s", rep)
	}
	if !strings.Contains(rep.String(), "does not reach the ring cycle") {
		t.Fatalf("second ring not named: %s", rep)
	}
}

// A cycle visiting identifiers out of order violates Ordered Ring.
func TestCheckRingDetectsUnorderedCycle(t *testing.T) {
	net := New(Config{})
	net.AddNodes("o", 6)
	nodes := net.Nodes() // ring order
	// Swap two adjacent nodes in the successor cycle: ...->a->b->... becomes
	// ...->b->a->..., which wraps more than once.
	a, b := nodes[2], nodes[3]
	nodes[1].mu.Lock()
	nodes[1].succs = []*Node{b}
	nodes[1].mu.Unlock()
	b.mu.Lock()
	b.succs = []*Node{a}
	b.mu.Unlock()
	a.mu.Lock()
	a.succs = []*Node{nodes[4]}
	a.mu.Unlock()
	rep := CheckRing(net)
	if rep.OK() {
		t.Fatalf("unordered cycle passed: %s", rep)
	}
	if !strings.Contains(rep.String(), "ordered ring") {
		t.Fatalf("ordering violation not named: %s", rep)
	}
}

// A successor list that repeats an entry, contains its own node, or breaks
// clockwise order violates successor-list consistency.
func TestCheckRingDetectsBadSuccessorList(t *testing.T) {
	net := New(Config{SuccessorListLen: 4})
	net.AddNodes("l", 8)
	n := net.Nodes()[0]

	n.mu.Lock()
	saved := append([]*Node(nil), n.succs...)
	n.succs = []*Node{saved[0], saved[0]}
	n.mu.Unlock()
	if rep := CheckRing(net); rep.OK() || !strings.Contains(rep.String(), "repeats") {
		t.Fatalf("repeated successor-list entry not flagged: %s", rep)
	}

	n.mu.Lock()
	n.succs = []*Node{saved[0], n}
	n.mu.Unlock()
	if rep := CheckRing(net); rep.OK() || !strings.Contains(rep.String(), "contains itself") {
		t.Fatalf("self entry not flagged: %s", rep)
	}

	n.mu.Lock()
	n.succs = []*Node{saved[1], saved[0]}
	n.mu.Unlock()
	if rep := CheckRing(net); rep.OK() || !strings.Contains(rep.String(), "clockwise order") {
		t.Fatalf("order violation not flagged: %s", rep)
	}

	n.mu.Lock()
	n.succs = saved
	n.mu.Unlock()
	if rep := CheckRing(net); !rep.Converged() {
		t.Fatalf("restored ring reported broken: %s", rep)
	}
}
