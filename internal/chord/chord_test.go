package chord

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cqjoin/internal/id"
)

// testMsg is a trivial Message for routing tests.
type testMsg struct {
	kind    string
	payload int
}

func (m testMsg) Kind() string { return m.kind }

// recorder collects delivered messages per node.
type recorder struct {
	mu   sync.Mutex
	seen map[string][]Message
}

func newRecorder() *recorder { return &recorder{seen: make(map[string][]Message)} }

func (r *recorder) HandleMessage(on *Node, msg Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen[on.Key()] = append(r.seen[on.Key()], msg)
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, v := range r.seen {
		n += len(v)
	}
	return n
}

func buildNet(t testing.TB, n int) *Network {
	t.Helper()
	net := New(Config{})
	net.AddNodes("node", n)
	if net.Size() != n {
		t.Fatalf("built %d nodes, want %d", net.Size(), n)
	}
	return net
}

func TestRingSortedAndPointersExact(t *testing.T) {
	net := buildNet(t, 64)
	nodes := net.Nodes()
	if !sort.SliceIsSorted(nodes, func(i, j int) bool { return nodes[i].ID().Less(nodes[j].ID()) }) {
		t.Fatal("ring not sorted by identifier")
	}
	for i, n := range nodes {
		wantSucc := nodes[(i+1)%len(nodes)]
		if n.Successor() != wantSucc {
			t.Fatalf("node %d successor wrong", i)
		}
		wantPred := nodes[(i-1+len(nodes))%len(nodes)]
		if n.Predecessor() != wantPred {
			t.Fatalf("node %d predecessor wrong", i)
		}
	}
}

func TestFingerDefinition(t *testing.T) {
	net := buildNet(t, 32)
	for _, n := range net.Nodes() {
		for j := 1; j <= id.Bits; j += 13 { // sample entries
			start := n.ID().AddPow2(uint(j - 1))
			want := net.OracleSuccessor(start)
			if got := n.Finger(j); got != want {
				t.Fatalf("node %s finger %d = %s, want %s", n, j, got, want)
			}
		}
	}
}

func TestOwnsKeyPartition(t *testing.T) {
	net := buildNet(t, 50)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		var k id.ID
		rng.Read(k[:])
		owners := 0
		for _, n := range net.Nodes() {
			if n.OwnsKey(k) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %s owned by %d nodes, want exactly 1", k.Short(), owners)
		}
	}
}

func TestRouteMatchesOracle(t *testing.T) {
	net := buildNet(t, 128)
	nodes := net.Nodes()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		src := nodes[rng.Intn(len(nodes))]
		var k id.ID
		rng.Read(k[:])
		got, _, err := src.route(k)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if want := net.OracleSuccessor(k); got != want {
			t.Fatalf("route(%s) from %s = %s, want %s", k.Short(), src, got, want)
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	net := buildNet(t, 1024)
	nodes := net.Nodes()
	rng := rand.New(rand.NewSource(13))
	total, samples := 0, 2000
	for i := 0; i < samples; i++ {
		src := nodes[rng.Intn(len(nodes))]
		var k id.ID
		rng.Read(k[:])
		_, hops, err := src.route(k)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		total += hops
	}
	avg := float64(total) / float64(samples)
	logN := math.Log2(float64(len(nodes)))
	if avg > logN {
		t.Fatalf("average hops %.2f exceeds log2(N)=%.2f", avg, logN)
	}
	if avg < 1 {
		t.Fatalf("average hops %.2f suspiciously low", avg)
	}
}

func TestSendDeliversToResponsibleNode(t *testing.T) {
	net := buildNet(t, 64)
	rec := newRecorder()
	for _, n := range net.Nodes() {
		n.SetHandler(rec)
	}
	src := net.Nodes()[0]
	target := id.Hash("R+A+some-value")
	dst, hops, err := src.Send(testMsg{kind: "test"}, target)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if want := net.OracleSuccessor(target); dst != want {
		t.Fatalf("delivered to %s, want %s", dst, want)
	}
	if len(rec.seen[dst.Key()]) != 1 {
		t.Fatal("handler not invoked exactly once")
	}
	if got := net.Traffic().Hops("test"); got != int64(hops) {
		t.Fatalf("traffic hops = %d, want %d", got, hops)
	}
	if got := net.Traffic().Messages("test"); got != 1 {
		t.Fatalf("traffic messages = %d, want 1", got)
	}
}

func TestSendToSelfCostsZeroHops(t *testing.T) {
	net := buildNet(t, 16)
	n := net.Nodes()[3]
	// A key the node owns: its own identifier.
	dst, hops, err := n.Send(testMsg{kind: "self"}, n.ID())
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if dst != n || hops != 0 {
		t.Fatalf("self send: dst=%s hops=%d", dst, hops)
	}
}

func TestSingletonNetwork(t *testing.T) {
	net := New(Config{})
	n, err := net.Join("only")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if n.Successor() != n {
		t.Fatal("singleton node must be its own successor")
	}
	var k id.ID
	if !n.OwnsKey(k) {
		t.Fatal("singleton node must own every key")
	}
	dst, hops, err := n.Send(testMsg{kind: "x"}, id.Hash("anything"))
	if err != nil || dst != n || hops != 0 {
		t.Fatalf("singleton send: dst=%v hops=%d err=%v", dst, hops, err)
	}
}

func TestMultisendDeliversAll(t *testing.T) {
	net := buildNet(t, 128)
	rec := newRecorder()
	for _, n := range net.Nodes() {
		n.SetHandler(rec)
	}
	src := net.Nodes()[0]
	rng := rand.New(rand.NewSource(17))
	const k = 40
	batch := make([]Deliverable, k)
	wantOwners := make(map[string]int)
	for i := range batch {
		var target id.ID
		rng.Read(target[:])
		batch[i] = Deliverable{Target: target, Msg: testMsg{kind: "ms", payload: i}}
		wantOwners[net.OracleSuccessor(target).Key()]++
	}
	recipients, hops, err := src.Multisend(batch)
	if err != nil {
		t.Fatalf("Multisend: %v", err)
	}
	for i, dst := range recipients {
		if want := net.OracleSuccessor(batch[i].Target); dst != want {
			t.Fatalf("recipient %d = %v, want %s", i, dst, want)
		}
	}
	if rec.count() != k {
		t.Fatalf("delivered %d messages, want %d", rec.count(), k)
	}
	for key, want := range wantOwners {
		if got := len(rec.seen[key]); got != want {
			t.Fatalf("node %s received %d, want %d", key, got, want)
		}
	}
	if hops <= 0 {
		t.Fatalf("multisend hops = %d", hops)
	}
	if got := net.Traffic().Messages("ms"); got != k {
		t.Fatalf("traffic messages = %d, want %d", got, k)
	}
	if got := net.Traffic().Hops("ms"); got != int64(hops) {
		t.Fatalf("traffic hops = %d, want %d", got, hops)
	}
}

// Figure 4.8's claim: the recursive multisend uses fewer hops than k
// iterative sends, and the gap grows with k.
func TestMultisendBeatsIterative(t *testing.T) {
	net := buildNet(t, 512)
	src := net.Nodes()[0]
	rng := rand.New(rand.NewSource(19))
	for _, k := range []int{8, 32, 128} {
		batch := make([]Deliverable, k)
		for i := range batch {
			var target id.ID
			rng.Read(target[:])
			batch[i] = Deliverable{Target: target, Msg: testMsg{kind: "a"}}
		}
		_, recHops, err := src.Multisend(batch)
		if err != nil {
			t.Fatalf("Multisend: %v", err)
		}
		_, iterHops, err := src.MultisendIterative(batch)
		if err != nil {
			t.Fatalf("MultisendIterative: %v", err)
		}
		if recHops >= iterHops {
			t.Fatalf("k=%d: recursive %d hops >= iterative %d hops", k, recHops, iterHops)
		}
	}
}

func TestMultisendEmptyBatch(t *testing.T) {
	net := buildNet(t, 8)
	recips, hops, err := net.Nodes()[0].Multisend(nil)
	if err != nil || hops != 0 || len(recips) != 0 {
		t.Fatalf("empty multisend: recips=%v hops=%d err=%v", recips, hops, err)
	}
}

func TestDirectSendSingleHop(t *testing.T) {
	net := buildNet(t, 8)
	rec := newRecorder()
	dst := net.Nodes()[5]
	dst.SetHandler(rec)
	net.Nodes()[0].DirectSend(testMsg{kind: "notify"}, dst)
	if rec.count() != 1 {
		t.Fatal("direct send not delivered")
	}
	if got := net.Traffic().Hops("notify"); got != 1 {
		t.Fatalf("direct send hops = %d, want 1", got)
	}
}

func TestJoinTransfersNothingWithoutHandler(t *testing.T) {
	net := New(Config{})
	for i := 0; i < 10; i++ {
		if _, err := net.Join(fmt.Sprintf("n%d", i)); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	if net.Size() != 10 {
		t.Fatalf("size = %d", net.Size())
	}
	// Pointer exactness after sequential joins.
	nodes := net.Nodes()
	for i, n := range nodes {
		if n.Successor() != nodes[(i+1)%len(nodes)] {
			t.Fatalf("join left wrong successor at %d", i)
		}
	}
}

func TestJoinDuplicateKeyRejected(t *testing.T) {
	net := New(Config{})
	if _, err := net.Join("dup"); err != nil {
		t.Fatalf("first join: %v", err)
	}
	if _, err := net.Join("dup"); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestLeaveRepairsRing(t *testing.T) {
	net := buildNet(t, 32)
	nodes := net.Nodes()
	leaving := nodes[10]
	net.Leave(leaving)
	if leaving.Alive() {
		t.Fatal("left node still alive")
	}
	if net.Size() != 31 {
		t.Fatalf("size = %d", net.Size())
	}
	// Ring remains routable and matches the oracle.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		var k id.ID
		rng.Read(k[:])
		src := net.Nodes()[rng.Intn(net.Size())]
		got, _, err := src.route(k)
		if err != nil {
			t.Fatalf("route after leave: %v", err)
		}
		if want := net.OracleSuccessor(k); got != want {
			t.Fatalf("route after leave: got %s want %s", got, want)
		}
	}
}

func TestFailKeepsRoutingCorrect(t *testing.T) {
	net := buildNet(t, 64)
	rng := rand.New(rand.NewSource(29))
	// Fail 10 random nodes abruptly.
	for i := 0; i < 10; i++ {
		nodes := net.Nodes()
		net.Fail(nodes[rng.Intn(len(nodes))])
	}
	if net.Size() != 54 {
		t.Fatalf("size = %d", net.Size())
	}
	for i := 0; i < 300; i++ {
		var k id.ID
		rng.Read(k[:])
		src := net.Nodes()[rng.Intn(net.Size())]
		got, _, err := src.route(k)
		if err != nil {
			t.Fatalf("route after failures: %v", err)
		}
		if want := net.OracleSuccessor(k); got != want {
			t.Fatalf("route after failures: got %s want %s", got, want)
		}
	}
}

func TestStabilizationConvergesAfterChurn(t *testing.T) {
	net := buildNet(t, 48)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 8; i++ {
		nodes := net.Nodes()
		net.Fail(nodes[rng.Intn(len(nodes))])
	}
	// Run the real maintenance protocol instead of oracle repair.
	net.StabilizeAll(3)
	nodes := net.Nodes()
	for i, n := range nodes {
		if got, want := n.Successor(), nodes[(i+1)%len(nodes)]; got != want {
			t.Fatalf("after stabilization node %d successor = %s, want %s", i, got, want)
		}
		if got, want := n.Predecessor(), nodes[(i-1+len(nodes))%len(nodes)]; got != want {
			t.Fatalf("after stabilization node %d predecessor = %s, want %s", i, got, want)
		}
	}
	// Fingers refreshed by FixFinger match the oracle.
	for _, n := range nodes {
		for j := 1; j <= id.Bits; j += 31 {
			start := n.ID().AddPow2(uint(j - 1))
			if got, want := n.Finger(j), net.OracleSuccessor(start); got != want {
				t.Fatalf("after stabilization finger %d of %s = %s, want %s", j, n, got, want)
			}
		}
	}
}

func TestConcurrentSends(t *testing.T) {
	net := buildNet(t, 64)
	rec := newRecorder()
	for _, n := range net.Nodes() {
		n.SetHandler(rec)
	}
	nodes := net.Nodes()
	var wg sync.WaitGroup
	const workers, sends = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < sends; i++ {
				src := nodes[rng.Intn(len(nodes))]
				var k id.ID
				rng.Read(k[:])
				if _, _, err := src.Send(testMsg{kind: "conc"}, k); err != nil {
					t.Errorf("concurrent send: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if rec.count() != workers*sends {
		t.Fatalf("delivered %d, want %d", rec.count(), workers*sends)
	}
}

func TestNodeByKey(t *testing.T) {
	net := buildNet(t, 8)
	n := net.NodeByKey("node3")
	if n == nil || n.Key() != "node3" {
		t.Fatal("NodeByKey failed")
	}
	net.Leave(n)
	if net.NodeByKey("node3") != nil {
		t.Fatal("NodeByKey returned departed node")
	}
	if net.NodeByKey("nope") != nil {
		t.Fatal("NodeByKey invented a node")
	}
}

func TestFingerPanicsOutOfRange(t *testing.T) {
	net := buildNet(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Finger(0) did not panic")
		}
	}()
	net.Nodes()[0].Finger(0)
}

// keyMover implements KeyTransferrer recording transfer calls.
type keyMover struct {
	mu    sync.Mutex
	calls []string
}

func (k *keyMover) HandleMessage(on *Node, msg Message) {}
func (k *keyMover) TransferKeys(from, to *Node, lo, hi id.ID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.calls = append(k.calls, fmt.Sprintf("%s->%s", from.Key(), to.Key()))
}

func TestJoinInvokesKeyTransfer(t *testing.T) {
	net := buildNet(t, 16)
	km := &keyMover{}
	for _, n := range net.Nodes() {
		n.SetHandler(km)
	}
	newNode, err := net.Join("late-joiner")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	km.mu.Lock()
	defer km.mu.Unlock()
	if len(km.calls) != 1 {
		t.Fatalf("transfer calls = %v, want exactly one", km.calls)
	}
	want := fmt.Sprintf("%s->%s", newNode.Successor().Key(), newNode.Key())
	if km.calls[0] != want {
		t.Fatalf("transfer = %s, want %s", km.calls[0], want)
	}
}

func TestLeaveInvokesKeyTransferToSuccessor(t *testing.T) {
	net := buildNet(t, 16)
	km := &keyMover{}
	for _, n := range net.Nodes() {
		n.SetHandler(km)
	}
	leaving := net.Nodes()[4]
	succ := leaving.Successor()
	net.Leave(leaving)
	km.mu.Lock()
	defer km.mu.Unlock()
	if len(km.calls) != 1 || km.calls[0] != fmt.Sprintf("%s->%s", leaving.Key(), succ.Key()) {
		t.Fatalf("transfer calls = %v", km.calls)
	}
}
