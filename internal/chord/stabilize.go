package chord

import "cqjoin/internal/id"

// This file implements Chord's periodic maintenance protocol from
// Section 2.2: stabilize (learn about recently joined successors), notify
// (update predecessor pointers), fix-fingers (refresh finger-table entries
// via lookups) and check-predecessor (detect a failed predecessor).
//
// The simulator normally installs exact pointers directly (Network.Join,
// Network.RepairAll) because the paper's experiments run on stable
// networks; the protocol below exists so churn behaviour — the claim that
// pointers converge after joins, leaves and failures — is reproduced and
// testable without the oracle.

// Stabilize runs one stabilization round on n: it asks its successor for
// the successor's predecessor p, adopts p as its new successor when p has
// slipped in between, notifies the (possibly new) successor of n's
// existence, and refreshes its successor list.
//
// It is split into stabilizeAdopt and stabilizeNotify so tests can wedge a
// concurrent join between the two halves — the exact lost-update window
// Zave's corrected protocol closes (churn_test.go exercises it).
func (n *Node) Stabilize() {
	succ := n.stabilizeAdopt()
	if succ == nil {
		return
	}
	n.stabilizeNotify(succ)
}

// stabilizeAdopt is the read half of stabilize: it picks the node to
// notify — the current successor, or the successor's predecessor when one
// has slipped in between. nil means there is nothing to do (dead node or
// singleton ring).
func (n *Node) stabilizeAdopt() *Node {
	if !n.Alive() {
		return nil
	}
	succ := n.Successor()
	if succ == n {
		// Singleton ring: nothing to learn.
		return nil
	}
	if p := succ.Predecessor(); p != nil && p.Alive() && id.Between(p.ID(), n.ID(), succ.ID()) {
		succ = p
	}
	return succ
}

// stabilizeNotify is the write half of stabilize: notify the chosen
// successor and refresh the successor list from it.
func (n *Node) stabilizeNotify(succ *Node) {
	succ.notify(n)

	// Refresh the successor list: succ followed by succ's list, truncated.
	tail := succ.SuccessorList()
	list := make([]*Node, 0, n.net.succListLen)
	list = append(list, succ)
	for _, s := range tail {
		if len(list) >= n.net.succListLen {
			break
		}
		if s != nil && s.Alive() && s != n {
			list = append(list, s)
		}
	}
	n.mu.Lock()
	n.succs = list
	n.mu.Unlock()
}

// notify tells n that node p believes it is n's predecessor; n adopts p
// when it has no predecessor or p lies between the current predecessor and
// n on the ring.
//
// Adopting a new predecessor shrinks n's arc of responsibility from
// (old, n] to (p, n]: the keys in (old, p] now belong to p, and n is the
// node holding them. When the displaced predecessor is still alive — i.e.
// p joined between two live nodes, rather than replacing a dead one — n
// hands those keys to p through the application's KeyTransferrer. This is
// the protocol-driven half of the Chord key hand-off; oracle joins
// (Network.JoinAt) perform the same transfer eagerly. When the old
// predecessor is nil or dead there is nothing to split: either n owned the
// whole ring, or crash hand-off already rehomed the dead node's keys.
func (n *Node) notify(p *Node) {
	if p == n || !p.Alive() {
		return
	}
	n.mu.Lock()
	old := n.pred
	adopted := false
	if n.pred == nil || !n.pred.Alive() || id.Between(p.ID(), n.pred.ID(), n.ID()) {
		adopted = n.pred != p
		n.pred = p
	}
	h := n.handler
	n.mu.Unlock()
	if !adopted || old == nil || old == p || !old.Alive() {
		return
	}
	if kt, ok := h.(KeyTransferrer); ok {
		kt.TransferKeys(n, p, old.ID(), p.ID())
	}
}

// CheckPredecessor clears n's predecessor pointer when the predecessor has
// failed, so a live node can claim the slot on the next notify.
func (n *Node) CheckPredecessor() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred != nil && !n.pred.Alive() {
		n.pred = nil
	}
}

// FixFinger refreshes finger-table entry j (1-based) by looking up
// Successor(id(n) + 2^(j-1)) through the overlay. The lookup hops are
// charged to the "chord-maintain" traffic kind.
func (n *Node) FixFinger(j int) {
	if j < 1 || j > id.Bits {
		return
	}
	start := n.ID().AddPow2(uint(j - 1))
	dst, hops, err := n.route(start)
	if err != nil {
		// The failed lookup still consumed hops.
		n.net.traffic.RecordHopsOnly("chord-maintain", hops)
		return
	}
	n.net.traffic.Record("chord-maintain", hops)
	n.mu.Lock()
	n.fingers[j-1] = dst
	n.mu.Unlock()
}

// FixNextFingers refreshes the node's next k finger-table entries
// round-robin, the amortized fix_fingers schedule real Chord deployments
// use instead of refreshing all 160 entries at once.
func (n *Node) FixNextFingers(k int) {
	if !n.Alive() {
		return
	}
	for i := 0; i < k; i++ {
		n.mu.Lock()
		j := n.nextFinger + 1 // FixFinger is 1-based
		n.nextFinger = (n.nextFinger + 1) % id.Bits
		n.mu.Unlock()
		n.FixFinger(j)
	}
}

// StabilizeOnce runs one cheap maintenance round over every alive node:
// check-predecessor, stabilize, and fingersPerNode round-robin finger
// refreshes per node. Chaos runs interleave this with workload events to
// model the periodic background protocol without the cost of a full
// StabilizeAll.
func (net *Network) StabilizeOnce(fingersPerNode int) {
	if fingersPerNode < 1 {
		fingersPerNode = 1
	}
	for _, n := range net.Nodes() {
		n.CheckPredecessor()
		n.Stabilize()
	}
	for _, n := range net.Nodes() {
		n.FixNextFingers(fingersPerNode)
	}
}

// StabilizeAll runs the full maintenance protocol for the given number of
// rounds over every alive node: check-predecessor, stabilize, then refresh
// all finger entries. Pointers converge to the exact ring within a few
// rounds on a quiescent network.
func (net *Network) StabilizeAll(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range net.Nodes() {
			n.CheckPredecessor()
			n.Stabilize()
		}
		for _, n := range net.Nodes() {
			for j := 1; j <= id.Bits; j++ {
				n.FixFinger(j)
			}
		}
	}
}
