package chord

import (
	"fmt"
	"sort"

	"cqjoin/internal/id"
)

// ErrRoutingFailed is returned when a lookup cannot converge, e.g. on an
// empty overlay or after exhausting the hop budget during heavy churn.
var ErrRoutingFailed = fmt.Errorf("chord: routing failed to converge")

// Sizer is implemented by messages that know their wire-encoded size. The
// routing layer then also charges bytes to the traffic ledger: a message of
// size s delivered after h hops is retransmitted h times, moving s*h bytes
// over the physical network.
type Sizer interface {
	Size() int
}

// chargeBytes records the wire bytes a delivery moved, when the message
// reports its size.
func (n *Node) chargeBytes(msg Message, hops int) {
	if hops <= 0 {
		return
	}
	if s, ok := msg.(Sizer); ok {
		n.net.traffic.AddBytes(msg.Kind(), s.Size()*hops)
	}
}

// route walks the overlay from n toward Successor(target) using finger
// tables, exactly like Chord's lookup (Section 2.2): each step forwards the
// message to the furthest finger preceding the target, costing one overlay
// hop, until the target falls between the current node and its successor.
// It returns the responsible node and the number of hops travelled; a
// message n delivers to itself costs zero hops.
func (n *Node) route(target id.ID) (*Node, int, error) {
	if !n.Alive() {
		return nil, 0, fmt.Errorf("%w: origin %s is not in the overlay", ErrRoutingFailed, n)
	}
	if n.OwnsKey(target) {
		return n, 0, nil
	}
	cur := n
	hops := 0
	// A correct lookup takes O(log N) hops; allow a generous budget so
	// stale fingers after churn still converge via successor chains, but a
	// broken ring fails instead of spinning.
	budget := 2*n.net.Size() + 16
	for ; hops < budget; hops++ {
		succ := cur.Successor()
		if id.BetweenRightIncl(target, cur.ID(), succ.ID()) {
			return succ, hops + 1, nil
		}
		next := cur.closestPrecedingAlive(target)
		if next == cur {
			next = succ
		}
		if next == cur {
			break
		}
		cur = next
	}
	return nil, hops, fmt.Errorf("%w: no progress toward %s from %s", ErrRoutingFailed, target.Short(), n)
}

// Lookup returns the node responsible for identifier target — the function
// lookup(I) of the Chord API — together with the overlay hops the lookup
// cost. The hops are charged to the "lookup" traffic kind.
func (n *Node) Lookup(target id.ID) (*Node, int, error) {
	dst, hops, err := n.route(target)
	if err != nil {
		return nil, hops, err
	}
	n.net.traffic.Record("lookup", hops)
	return dst, hops, nil
}

// Send implements the send(msg, I) extension of Section 2.3: it routes msg
// from n to Successor(I) and invokes that node's handler. The cost —
// O(log N) overlay hops — is charged to the message's kind. It returns the
// recipient and the hop count.
func (n *Node) Send(msg Message, target id.ID) (*Node, int, error) {
	dst, hops, err := n.route(target)
	if err != nil {
		return nil, hops, err
	}
	n.net.traffic.Record(msg.Kind(), hops)
	n.chargeBytes(msg, hops)
	deliver(dst, msg)
	return dst, hops, nil
}

// DirectSend delivers msg from n straight to node dst over one simulated
// point-to-point hop, modelling delivery to a known IP address (the
// one-hop notification path of Section 4.6).
func (n *Node) DirectSend(msg Message, dst *Node) {
	n.net.traffic.Record(msg.Kind(), 1)
	n.chargeBytes(msg, 1)
	deliver(dst, msg)
}

// Deliverable pairs one message with the ring identifier it must reach, for
// the multisend(M, L) form that sends message M_j to Successor(L_j).
type Deliverable struct {
	Target id.ID
	Msg    Message
}

// Multisend implements the recursive multisend(M, L) of Section 2.3. The
// sender sorts the identifiers in ascending clockwise order starting from
// its own identifier and forwards the whole batch toward the first one;
// every node that receives the batch delivers the messages it is
// responsible for, prunes them from the list, and forwards the remainder to
// the next identifier. One traffic message per deliverable is recorded and
// the shared relay hops are charged to the batch's kinds proportionally.
//
// It returns the recipient of every deliverable (aligned with the input
// batch) and the total overlay hops used. All deliverables must carry
// messages of the same Kind for accounting purposes; mixing kinds is
// allowed but hops are charged to the first kind.
func (n *Node) Multisend(batch []Deliverable) ([]*Node, int, error) {
	if len(batch) == 0 {
		return nil, 0, nil
	}
	if !n.Alive() {
		return nil, 0, fmt.Errorf("%w: origin %s is not in the overlay", ErrRoutingFailed, n)
	}
	// Sort clockwise from the sender: ascending distance(id(n), target).
	type item struct {
		d   Deliverable
		idx int
	}
	sorted := make([]item, len(batch))
	for i, d := range batch {
		sorted[i] = item{d: d, idx: i}
	}
	origin := n.ID()
	sort.SliceStable(sorted, func(i, j int) bool {
		return id.Distance(origin, sorted[i].d.Target).Less(id.Distance(origin, sorted[j].d.Target))
	})

	kind := sorted[0].d.Msg.Kind()
	for _, it := range sorted {
		n.net.traffic.Record(it.d.Msg.Kind(), 0)
	}

	recipients := make([]*Node, len(batch))
	cur := n
	totalHops := 0
	budget := 2*n.net.Size() + 16*len(sorted) + 16
	for len(sorted) > 0 {
		// Deliver every remaining message the current node is responsible
		// for ("x deletes all elements of L that are smaller or equal to
		// id(x), starting from head(L), since node x is responsible for
		// them").
		for len(sorted) > 0 && cur.OwnsKey(sorted[0].d.Target) {
			recipients[sorted[0].idx] = cur
			// The message rode the shared walk for totalHops legs so far.
			n.chargeBytes(sorted[0].d.Msg, totalHops)
			deliver(cur, sorted[0].d.Msg)
			sorted = sorted[1:]
		}
		if len(sorted) == 0 {
			break
		}
		if totalHops >= budget {
			n.net.traffic.RecordHopsOnly(kind, totalHops)
			return recipients, totalHops, fmt.Errorf("%w: multisend exceeded hop budget", ErrRoutingFailed)
		}
		// One forwarding step toward head(L).
		head := sorted[0].d.Target
		succ := cur.Successor()
		var next *Node
		if id.BetweenRightIncl(head, cur.ID(), succ.ID()) {
			next = succ
		} else {
			next = cur.closestPrecedingAlive(head)
			if next == cur {
				next = succ
			}
		}
		if next == cur {
			n.net.traffic.RecordHopsOnly(kind, totalHops)
			return recipients, totalHops, fmt.Errorf("%w: multisend stuck at %s", ErrRoutingFailed, cur)
		}
		cur = next
		totalHops++
	}
	n.net.traffic.RecordHopsOnly(kind, totalHops)
	return recipients, totalHops, nil
}

// MultisendIterative is the baseline the paper implemented "for comparison
// purposes": k independent send() lookups from the origin, costing
// O(k log N) hops with no path sharing. Figure 4.8 contrasts it with the
// recursive Multisend.
func (n *Node) MultisendIterative(batch []Deliverable) ([]*Node, int, error) {
	total := 0
	recipients := make([]*Node, len(batch))
	for i, d := range batch {
		dst, hops, err := n.Send(d.Msg, d.Target)
		total += hops
		if err != nil {
			return recipients, total, err
		}
		recipients[i] = dst
	}
	return recipients, total, nil
}

// deliver hands msg to the node's application handler, if any.
func deliver(dst *Node, msg Message) {
	if h := dst.Handler(); h != nil {
		h.HandleMessage(dst, msg)
	}
}
