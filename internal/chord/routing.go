package chord

import (
	"fmt"
	"sort"

	"cqjoin/internal/id"
)

// ErrRoutingFailed is returned when a lookup cannot converge, e.g. on an
// empty overlay or after exhausting the hop budget during heavy churn.
var ErrRoutingFailed = fmt.Errorf("chord: routing failed to converge")

// ErrDropped is returned when a message was routed to its destination but
// the final delivery did not complete synchronously — the network dropped
// or delayed it, or the destination was no longer alive. Routing-layer
// costs up to that point are still charged; the sender may retry.
var ErrDropped = fmt.Errorf("chord: message dropped in transit")

// Interceptor sits on the single choke point where the simulated network
// hands a message to its destination node, and may drop, duplicate or
// delay the delivery. forward performs one synchronous delivery attempt
// and reports whether the destination was alive to receive it; the
// interceptor may call it zero times (drop / defer for later), once
// (normal), or several times (duplication). Deliver returns how many
// synchronous deliveries completed — the sender treats zero as a missing
// ack and may retry. Implementations must not hold locks across forward:
// handlers re-enter the network from inside it.
type Interceptor interface {
	Deliver(from, dst *Node, msg Message, forward func() bool) int
}

// Sizer is implemented by messages that know their wire-encoded size. The
// routing layer then also charges bytes to the traffic ledger: a message of
// size s delivered after h hops is retransmitted h times, moving s*h bytes
// over the physical network.
type Sizer interface {
	Size() int
}

// chargeBytes records the wire bytes a delivery moved, when the message
// reports its size. This is the codec choke point of the simulator: each
// Size() call performs a full wire encoding, and the per-message size is
// observed into the "chord.wire_bytes" histogram when observability is on.
func (n *Node) chargeBytes(msg Message, hops int) {
	if hops <= 0 {
		return
	}
	if s, ok := msg.(Sizer); ok {
		size := s.Size()
		n.net.traffic.AddBytes(msg.Kind(), size*hops)
		n.net.obs.wireBytes.Observe(int64(size))
	}
}

// route walks the overlay from n toward Successor(target) using finger
// tables, exactly like Chord's lookup (Section 2.2): each step forwards the
// message to the furthest finger preceding the target, costing one overlay
// hop, until the target falls between the current node and its successor.
// It returns the responsible node and the number of hops travelled; a
// message n delivers to itself costs zero hops.
func (n *Node) route(target id.ID) (*Node, int, error) {
	if !n.Alive() {
		return nil, 0, fmt.Errorf("%w: origin %s is not in the overlay", ErrRoutingFailed, n)
	}
	if n.OwnsKey(target) {
		return n, 0, nil
	}
	cur := n
	hops := 0
	// A correct lookup takes O(log N) hops; allow a generous budget so
	// stale fingers after churn still converge via successor chains, but a
	// broken ring fails instead of spinning.
	budget := 2*n.net.Size() + 16
	for ; hops < budget; hops++ {
		succ := cur.Successor()
		if id.BetweenRightIncl(target, cur.ID(), succ.ID()) {
			return succ, hops + 1, nil
		}
		next := cur.closestPrecedingAlive(target)
		if next == cur {
			next = succ
		}
		if next == cur {
			break
		}
		cur = next
	}
	return nil, hops, fmt.Errorf("%w: no progress toward %s from %s", ErrRoutingFailed, target.Short(), n)
}

// Lookup returns the node responsible for identifier target — the function
// lookup(I) of the Chord API — together with the overlay hops the lookup
// cost. The hops are charged to the "lookup" traffic kind.
func (n *Node) Lookup(target id.ID) (*Node, int, error) {
	dst, hops, err := n.route(target)
	if err != nil {
		// A failed lookup still moved `hops` messages over the overlay
		// before giving up; charge them so churn experiments account for
		// wasted routing work.
		n.net.traffic.RecordHopsOnly("lookup", hops)
		n.net.obs.routeFailures.Inc()
		return nil, hops, err
	}
	n.net.traffic.Record("lookup", hops)
	n.net.obs.lookups.Inc()
	n.net.obs.lookupHops.Observe(int64(hops))
	return dst, hops, nil
}

// Send implements the send(msg, I) extension of Section 2.3: it routes msg
// from n to Successor(I) and invokes that node's handler. The cost —
// O(log N) overlay hops — is charged to the message's kind. It returns the
// recipient and the hop count. When the final delivery does not complete
// synchronously (dropped, delayed or dead destination) the recipient and
// hops are still returned alongside ErrDropped so the sender can retry.
func (n *Node) Send(msg Message, target id.ID) (*Node, int, error) {
	dst, hops, err := n.route(target)
	if err != nil {
		n.net.traffic.RecordHopsOnly(msg.Kind(), hops)
		n.net.obs.routeFailures.Inc()
		return nil, hops, err
	}
	n.net.traffic.Record(msg.Kind(), hops)
	n.chargeBytes(msg, hops)
	n.net.obs.sends.Add(msg.Kind(), 1)
	n.net.obs.sendHops.Observe(int64(hops))
	if !n.deliverTo(dst, msg) {
		return dst, hops, ErrDropped
	}
	return dst, hops, nil
}

// DirectSend delivers msg from n straight to node dst over one simulated
// point-to-point hop, modelling delivery to a known IP address (the
// one-hop notification path of Section 4.6). It reports whether the
// delivery completed synchronously; false means the packet was lost or
// the address no longer answers, and the sender should fall back to DHT
// routing or retry.
func (n *Node) DirectSend(msg Message, dst *Node) bool {
	n.net.traffic.Record(msg.Kind(), 1)
	n.chargeBytes(msg, 1)
	n.net.obs.directSends.Inc()
	return n.deliverTo(dst, msg)
}

// Deliverable pairs one message with the ring identifier it must reach, for
// the multisend(M, L) form that sends message M_j to Successor(L_j).
type Deliverable struct {
	Target id.ID
	Msg    Message
}

// Multisend implements the recursive multisend(M, L) of Section 2.3. The
// sender sorts the identifiers in ascending clockwise order starting from
// its own identifier and forwards the whole batch toward the first one;
// every node that receives the batch delivers the messages it is
// responsible for, prunes them from the list, and forwards the remainder to
// the next identifier. One traffic message per deliverable is recorded and
// the shared relay hops are charged to the batch's kinds proportionally.
//
// It returns the recipient of every deliverable (aligned with the input
// batch) and the total overlay hops used. All deliverables must carry
// messages of the same Kind for accounting purposes; mixing kinds is
// allowed but hops are charged to the first kind.
func (n *Node) Multisend(batch []Deliverable) ([]*Node, int, error) {
	if len(batch) == 0 {
		return nil, 0, nil
	}
	if !n.Alive() {
		return nil, 0, fmt.Errorf("%w: origin %s is not in the overlay", ErrRoutingFailed, n)
	}
	// Sort clockwise from the sender: ascending distance(id(n), target).
	type item struct {
		d   Deliverable
		idx int
	}
	sorted := make([]item, len(batch))
	for i, d := range batch {
		sorted[i] = item{d: d, idx: i}
	}
	origin := n.ID()
	sort.SliceStable(sorted, func(i, j int) bool {
		return id.Distance(origin, sorted[i].d.Target).Less(id.Distance(origin, sorted[j].d.Target))
	})

	kind := sorted[0].d.Msg.Kind()
	for _, it := range sorted {
		n.net.traffic.Record(it.d.Msg.Kind(), 0)
	}
	n.net.obs.multisends.Inc()
	n.net.obs.multisendSize.Observe(int64(len(sorted)))

	recipients := make([]*Node, len(batch))
	cur := n
	totalHops := 0
	budget := 2*n.net.Size() + 16*len(sorted) + 16
	for len(sorted) > 0 {
		// Deliver every remaining message the current node is responsible
		// for ("x deletes all elements of L that are smaller or equal to
		// id(x), starting from head(L), since node x is responsible for
		// them"). The whole run goes down as one transport batch — a single
		// frame on a remote transport, message-by-message in the simulator.
		run := 0
		for run < len(sorted) && cur.OwnsKey(sorted[run].d.Target) {
			run++
		}
		if run > 0 {
			msgs := make([]Message, run)
			for i := 0; i < run; i++ {
				// Each message rode the shared walk for totalHops legs so far.
				n.chargeBytes(sorted[i].d.Msg, totalHops)
				msgs[i] = sorted[i].d.Msg
			}
			for i, ok := range n.deliverBatchTo(cur, msgs) {
				// A failed delivery leaves recipients[idx] nil; the batch
				// keeps moving so one lost packet doesn't strand the rest.
				if ok {
					recipients[sorted[i].idx] = cur
				}
			}
			sorted = sorted[run:]
		}
		if len(sorted) == 0 {
			break
		}
		if totalHops >= budget {
			n.net.traffic.RecordHopsOnly(kind, totalHops)
			n.net.obs.multisendHops.Observe(int64(totalHops))
			n.net.obs.routeFailures.Inc()
			return recipients, totalHops, fmt.Errorf("%w: multisend exceeded hop budget", ErrRoutingFailed)
		}
		// One forwarding step toward head(L).
		head := sorted[0].d.Target
		succ := cur.Successor()
		var next *Node
		if id.BetweenRightIncl(head, cur.ID(), succ.ID()) {
			next = succ
		} else {
			next = cur.closestPrecedingAlive(head)
			if next == cur {
				next = succ
			}
		}
		if next == cur {
			n.net.traffic.RecordHopsOnly(kind, totalHops)
			n.net.obs.multisendHops.Observe(int64(totalHops))
			n.net.obs.routeFailures.Inc()
			return recipients, totalHops, fmt.Errorf("%w: multisend stuck at %s", ErrRoutingFailed, cur)
		}
		cur = next
		totalHops++
	}
	n.net.traffic.RecordHopsOnly(kind, totalHops)
	n.net.obs.multisendHops.Observe(int64(totalHops))
	return recipients, totalHops, nil
}

// MultisendIterative is the baseline the paper implemented "for comparison
// purposes": k independent send() lookups from the origin, costing
// O(k log N) hops with no path sharing. Figure 4.8 contrasts it with the
// recursive Multisend.
func (n *Node) MultisendIterative(batch []Deliverable) ([]*Node, int, error) {
	total := 0
	var firstErr error
	recipients := make([]*Node, len(batch))
	for i, d := range batch {
		dst, hops, err := n.Send(d.Msg, d.Target)
		total += hops
		if err != nil {
			// Leave recipients[i] nil so the caller can retry just this
			// deliverable; keep going for the rest of the batch.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		recipients[i] = dst
	}
	return recipients, total, firstErr
}

// deliverTo hands msg to dst through the network's delivery transport —
// in-process simulated delivery by default, a real wire when one is
// installed — and reports whether at least one synchronous delivery
// completed. A false return is the missing ack the reliability layer
// retries on. Sender-side delivery accounting lives here, above the
// transport, so it is identical for every implementation.
func (n *Node) deliverTo(dst *Node, msg Message) bool {
	ok := n.net.Transport().Deliver(n, dst, msg)
	if ok {
		n.net.obs.deliveries.Add(msg.Kind(), 1)
	} else {
		n.net.obs.deliveryMiss.Inc()
	}
	return ok
}

// deliverBatchTo delivers a run of messages bound for the same node in
// order, returning one ack per message. A remote transport moves the whole
// run in a single frame; the simulated default delivers one by one,
// exactly like repeated deliverTo calls.
func (n *Node) deliverBatchTo(dst *Node, msgs []Message) []bool {
	acks := n.net.Transport().DeliverBatch(n, dst, msgs)
	for i, ok := range acks {
		if ok {
			n.net.obs.deliveries.Add(msgs[i].Kind(), 1)
		} else {
			n.net.obs.deliveryMiss.Inc()
		}
	}
	return acks
}
