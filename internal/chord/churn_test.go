package chord

import (
	"fmt"
	"math/rand"
	"testing"

	"cqjoin/internal/id"
)

// Property: after ANY sequence of joins, voluntary leaves and crashes, the
// ring invariants hold — sorted membership, exact successor/predecessor
// chains (after the repairs the operations themselves perform), and
// routing that agrees with the oracle from every node for random keys.
func TestChurnSequencesPreserveInvariants(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			net := New(Config{})
			net.AddNodes("base", 24)
			joined := 0
			for op := 0; op < 120; op++ {
				switch rng.Intn(3) {
				case 0:
					joined++
					if _, err := net.Join(fmt.Sprintf("churn-%d-%d", seed, joined)); err != nil {
						t.Fatalf("join: %v", err)
					}
				case 1:
					if net.Size() > 4 {
						nodes := net.Nodes()
						net.Leave(nodes[rng.Intn(len(nodes))])
					}
				case 2:
					if net.Size() > 4 {
						nodes := net.Nodes()
						net.Fail(nodes[rng.Intn(len(nodes))])
						// A crash leaves stale fingers; the maintenance
						// protocol (or oracle repair) restores them.
						net.RepairAll()
					}
				}
				// Spot-check invariants every few operations.
				if op%17 != 0 {
					continue
				}
				assertRingExact(t, net)
			}
			assertRingExact(t, net)
			assertRoutingMatchesOracle(t, net, rng, 100)
		})
	}
}

func assertRingExact(t *testing.T, net *Network) {
	t.Helper()
	nodes := net.Nodes()
	for i, n := range nodes {
		if got, want := n.Successor(), nodes[(i+1)%len(nodes)]; got != want {
			t.Fatalf("successor of %s = %v, want %v", n, got, want)
		}
	}
}

func assertRoutingMatchesOracle(t *testing.T, net *Network, rng *rand.Rand, samples int) {
	t.Helper()
	nodes := net.Nodes()
	for i := 0; i < samples; i++ {
		var k id.ID
		rng.Read(k[:])
		src := nodes[rng.Intn(len(nodes))]
		got, _, err := src.route(k)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if want := net.OracleSuccessor(k); got != want {
			t.Fatalf("route(%s) = %s, want %s", k.Short(), got, want)
		}
	}
}

// Keys must always have exactly one owner, across churn.
func TestOwnershipPartitionUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	net := New(Config{})
	net.AddNodes("p", 20)
	for op := 0; op < 40; op++ {
		if rng.Intn(2) == 0 {
			_, _ = net.Join(fmt.Sprintf("extra-%d", op))
		} else if net.Size() > 4 {
			nodes := net.Nodes()
			net.Leave(nodes[rng.Intn(len(nodes))])
		}
		var k id.ID
		rng.Read(k[:])
		owners := 0
		for _, n := range net.Nodes() {
			if n.OwnsKey(k) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("op %d: key %s has %d owners", op, k.Short(), owners)
		}
	}
}

// The network must survive losing a large fraction of nodes at once when
// successor lists are long enough.
func TestMassFailure(t *testing.T) {
	net := New(Config{SuccessorListLen: 16})
	net.AddNodes("m", 128)
	rng := rand.New(rand.NewSource(5))
	// Crash 40% of the nodes without any repair in between.
	for i := 0; i < 51; i++ {
		nodes := net.Nodes()
		net.Fail(nodes[rng.Intn(len(nodes))])
	}
	assertRoutingMatchesOracle(t, net, rng, 200)
}

// transferRec is one observed key hand-off.
type transferRec struct {
	from, to string
	lo, hi   id.ID
}

// recordingTransferrer is a Handler + KeyTransferrer that only records the
// hand-offs the protocol triggers.
type recordingTransferrer struct {
	calls []transferRec
}

func (r *recordingTransferrer) HandleMessage(on *Node, msg Message) {}

func (r *recordingTransferrer) TransferKeys(from, to *Node, lo, hi id.ID) {
	r.calls = append(r.calls, transferRec{from: from.Key(), to: to.Key(), lo: lo, hi: hi})
}

// TestJoinDuringStabilizeDoesNotLoseHandoff is the regression test for the
// lost-update join race Zave's corrected protocol closes: node a's
// stabilize round reads its successor c's state, then b joins between a
// and c and splices in, and only then does a's interrupted round complete
// its stale notify. The stale notify must not regress c's predecessor back
// to a — which would orphan b and re-trigger the (a, b] key hand-off on
// b's next notify, delivering the arc twice.
func TestJoinDuringStabilizeDoesNotLoseHandoff(t *testing.T) {
	net := New(Config{})
	net.AddNodes("ln", 16)
	rec := &recordingTransferrer{}
	for _, n := range net.Nodes() {
		n.SetHandler(rec)
	}

	key := "wedge-join"
	c := net.OracleSuccessor(id.Hash(key))
	a := c.Predecessor()

	// The read half of a's round completes before b exists: a sees no one
	// between itself and c.
	stale := a.stabilizeAdopt()
	if stale != c {
		t.Fatalf("stabilizeAdopt of %s = %v, want %v", a, stale, c)
	}

	// b joins between a and c and runs its own stabilize: c adopts b and
	// hands the arc (a, b] over exactly once.
	b, err := net.JoinProtocol(key)
	if err != nil {
		t.Fatalf("JoinProtocol: %v", err)
	}
	b.SetHandler(rec)
	b.Stabilize()
	if got := c.Predecessor(); got != b {
		t.Fatalf("after b's stabilize, %s.predecessor = %v, want %v", c, got, b)
	}

	// a's interrupted round now finishes against its stale target. Before
	// the corrected notify rule this wrote c.pred = a, undoing b's splice.
	a.stabilizeNotify(stale)
	if got := c.Predecessor(); got != b {
		t.Fatalf("stale notify regressed %s.predecessor to %v, want %v", c, got, b)
	}

	// a learns about b on its next full round and the ring is whole again.
	a.Stabilize()
	if got := a.Successor(); got != b {
		t.Fatalf("after a's round, %s.successor = %v, want %v", a, got, b)
	}
	net.StabilizeAll(2)
	if rep := CheckRing(net); !rep.Converged() {
		t.Fatalf("ring not converged: %s", rep)
	}
	assertRingExact(t, net)

	// Exactly one hand-off happened: c gave (a, b] to the joiner, once.
	// A regressed predecessor would have repeated it on b's re-adoption.
	if len(rec.calls) != 1 {
		t.Fatalf("key hand-offs = %d (%v), want exactly 1", len(rec.calls), rec.calls)
	}
	tr := rec.calls[0]
	if tr.from != c.Key() || tr.to != b.Key() || tr.lo != a.ID() || tr.hi != b.ID() {
		t.Fatalf("hand-off = %+v, want %s -> %s over (%s, %s]", tr, c.Key(), b.Key(), a.ID().Short(), b.ID().Short())
	}
}

func TestStabilizationHealsWithoutOracle(t *testing.T) {
	// Kill nodes, then rely purely on the periodic protocol — no
	// RepairAll — to restore exact pointers.
	net := New(Config{SuccessorListLen: 8})
	net.AddNodes("s", 40)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 6; i++ {
		nodes := net.Nodes()
		net.Fail(nodes[rng.Intn(len(nodes))])
	}
	net.StabilizeAll(3)
	assertRingExact(t, net)
	assertRoutingMatchesOracle(t, net, rng, 100)
}
