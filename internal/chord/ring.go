package chord

import (
	"fmt"
	"strings"

	"cqjoin/internal/id"
)

// This file is the ring-invariant oracle from Zave's "How To Make Chord
// Correct": a checker over the ACTUAL successor pointers nodes hold, not
// the membership index. The sorted ring index always looks perfect by
// construction; what churn can break is the pointer structure, and that is
// what CheckRing inspects. Both the test suites and the daemon's `stats`
// op invoke it, so a live deployment can ask "is my ring whole?" with the
// same code the property tests gate on.
//
// The invariants, per Zave:
//
//   - Ordered Ring: following successor pointers around the cycle visits
//     identifiers in increasing order, wrapping exactly once.
//   - At Most One Ring: every node's successor walk ends on the same cycle;
//     there is no second disjoint cycle.
//   - Connected Appendages: a node not yet on the cycle (e.g. mid-join)
//     still reaches the cycle via its successor chain.
//   - Successor-list consistency: each list's alive entries are distinct,
//     exclude the node itself, and appear in strictly increasing clockwise
//     distance from the node.

// RingReport is the result of one CheckRing pass.
type RingReport struct {
	// Alive is the number of alive nodes inspected.
	Alive int
	// CycleLen is the length of the unique successor cycle (0 on an empty
	// overlay, 1 for a singleton).
	CycleLen int
	// Appendages counts alive nodes not yet spliced into the cycle; they
	// still satisfy the invariants as long as their walks reach it.
	Appendages int
	// Violations lists every invariant violation found, in a deterministic
	// order. Empty means the ring satisfies all four invariants.
	Violations []string
}

// OK reports whether every invariant holds.
func (r *RingReport) OK() bool { return len(r.Violations) == 0 }

// Converged reports whether the ring is not only correct but fully
// stabilized: every alive node sits on the one cycle.
func (r *RingReport) Converged() bool { return r.OK() && r.Appendages == 0 }

// Err returns nil when the ring is correct, or one error summarizing every
// violation.
func (r *RingReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("chord: ring invariants violated: %s", strings.Join(r.Violations, "; "))
}

// String renders the report for logs and the daemon's stats op.
func (r *RingReport) String() string {
	if r.OK() {
		return fmt.Sprintf("ok: %d alive, cycle %d, appendages %d", r.Alive, r.CycleLen, r.Appendages)
	}
	return fmt.Sprintf("BROKEN: %d alive, cycle %d, appendages %d: %s",
		r.Alive, r.CycleLen, r.Appendages, strings.Join(r.Violations, "; "))
}

// CheckRing verifies the Zave ring invariants against the actual successor
// pointers of every alive node. It never repairs anything and never touches
// the routing data path; it is safe to call concurrently with traffic.
func CheckRing(net *Network) *RingReport {
	nodes := net.Nodes()
	rep := &RingReport{Alive: len(nodes)}
	if len(nodes) == 0 {
		return rep
	}

	// Find the cycle the first node's successor walk ends on. Successor()
	// is deterministic over a finite node set, so the walk must revisit.
	cycle := walkToCycle(nodes[0], 2*len(nodes)+2)
	if cycle == nil {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("successor walk from %s never cycles", nodes[0]))
		return rep
	}
	onCycle := make(map[*Node]bool, len(cycle))
	for _, c := range cycle {
		onCycle[c] = true
	}
	rep.CycleLen = len(cycle)

	// Ordered Ring: exactly one wrap point going around the cycle.
	if len(cycle) > 1 {
		descents := 0
		for i, c := range cycle {
			next := cycle[(i+1)%len(cycle)]
			if next.ID().Less(c.ID()) {
				descents++
			}
		}
		if descents != 1 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("cycle of %d nodes wraps %d times, want 1 (ordered ring)", len(cycle), descents))
		}
	}

	// At Most One Ring + Connected Appendages: every other node's walk must
	// land on the one cycle found above.
	for _, n := range nodes {
		if onCycle[n] {
			continue
		}
		rep.Appendages++
		if !reachesCycle(n, onCycle, 2*len(nodes)+2) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s does not reach the ring cycle (second ring or dangling appendage)", n))
		}
	}

	// Successor-list consistency.
	for _, n := range nodes {
		checkSuccessorList(rep, n)
	}
	return rep
}

// walkToCycle follows successor pointers from n until a node repeats, and
// returns the cycle (from the first repeated node). nil means the walk
// exceeded its budget without repeating, which indicates pointer corruption.
func walkToCycle(n *Node, budget int) []*Node {
	seen := make(map[*Node]int)
	path := make([]*Node, 0, budget)
	cur := n
	for step := 0; step <= budget; step++ {
		if at, ok := seen[cur]; ok {
			return path[at:]
		}
		seen[cur] = len(path)
		path = append(path, cur)
		cur = cur.Successor()
	}
	return nil
}

// reachesCycle reports whether n's successor walk hits the cycle within the
// hop budget.
func reachesCycle(n *Node, onCycle map[*Node]bool, budget int) bool {
	cur := n
	for step := 0; step <= budget; step++ {
		if onCycle[cur] {
			return true
		}
		next := cur.Successor()
		if next == cur {
			return false // stuck on a self-loop off the cycle
		}
		cur = next
	}
	return false
}

// checkSuccessorList verifies one node's successor list: alive entries are
// distinct, never the node itself, and sit at strictly increasing clockwise
// distance — i.e. the list really is "my next r successors in ring order".
// Dead entries are tolerated; they are what the list exists to skip.
func checkSuccessorList(rep *RingReport, n *Node) {
	seen := make(map[*Node]bool)
	var prev id.ID
	first := true
	for i, s := range n.SuccessorList() {
		if s == nil || !s.Alive() {
			continue
		}
		if s == n {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("successor list of %s contains itself at %d", n, i))
			continue
		}
		if seen[s] {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("successor list of %s repeats %s", n, s))
			continue
		}
		seen[s] = true
		d := id.Distance(n.ID(), s.ID())
		if !first && !prev.Less(d) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("successor list of %s not in clockwise order at %d (%s)", n, i, s))
		}
		prev = d
		first = false
	}
}
