// Package chord implements the Chord structured overlay network of
// Chapter 2: a 160-bit consistent-hashing ring with finger tables,
// successor lists and predecessor pointers, plus the API extensions of
// Section 2.3 — send(msg, I) and the recursive multisend(M, L) — with
// per-message overlay-hop accounting.
//
// The overlay runs in-process: every node is an object and messages are
// routed hop by hop through real finger tables, charging each hop to a
// metrics.Traffic ledger. This reproduces the simulation environment of the
// paper's evaluation (Chapter 5), whose metrics are purely algorithmic
// (hops, messages, per-node load).
package chord

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cqjoin/internal/id"
)

// Message is an application-level message routed through the overlay. The
// routing layer only needs a kind for the traffic ledger; payloads are
// opaque to chord and interpreted by the Handler.
type Message interface {
	// Kind names the message class for traffic accounting
	// (e.g. "al-index", "vl-index", "join", "notification").
	Kind() string
}

// Handler processes messages delivered to a node. The query-processing
// engine of Chapter 4 implements Handler; chord itself never inspects
// payloads.
type Handler interface {
	HandleMessage(on *Node, msg Message)
}

// KeyTransferrer is implemented by handlers that store data under ring
// identifiers. When ring responsibility changes (a node joins, leaves or
// reconnects), TransferKeys is invoked so items with identifiers in the
// half-open ring interval (lo, hi] move from one node to another. This is
// the Chord key hand-off that Section 4.6 relies on to replay stored
// notifications when a subscriber reconnects.
type KeyTransferrer interface {
	TransferKeys(from, to *Node, lo, hi id.ID)
}

// Node is a Chord overlay node. All exported methods are safe for
// concurrent use.
type Node struct {
	net *Network
	key string
	id  id.ID

	alive atomic.Bool

	mu         sync.Mutex
	ip         string
	pred       *Node
	succs      []*Node // successor list; succs[0] is the immediate successor
	fingers    [id.Bits]*Node
	nextFinger int // round-robin cursor for amortized fix-fingers
	handler    Handler
}

// Key returns the node's unique key (Section 2.2: e.g. derived from its
// public key and/or IP address).
func (n *Node) Key() string { return n.key }

// ID returns the node's ring identifier, Hash(Key(n)).
func (n *Node) ID() id.ID { return n.id }

// IP returns the node's current simulated network address. A node keeps
// its key (and so its ring identifier) across sessions, but may come back
// under a different address (Section 4.6).
func (n *Node) IP() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ip
}

// SetIP changes the node's simulated network address, modelling a
// reconnection from elsewhere. Peers holding the old address will miss it
// and fall back to DHT routing until they learn the new one.
func (n *Node) SetIP(ip string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ip = ip
}

// Network returns the overlay the node belongs to.
func (n *Node) Network() *Network { return n.net }

// Alive reports whether the node is currently part of the overlay.
func (n *Node) Alive() bool { return n.alive.Load() }

// SetHandler installs the application-level message handler.
func (n *Node) SetHandler(h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// Handler returns the installed application-level handler, or nil.
func (n *Node) Handler() Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.handler
}

// Successor returns the node's immediate successor. A node in a singleton
// network is its own successor.
func (n *Node) Successor() *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.successorLocked()
}

func (n *Node) successorLocked() *Node {
	for _, s := range n.succs {
		if s != nil && s.Alive() {
			return s
		}
	}
	return n
}

// Predecessor returns the node's predecessor pointer, or nil when unknown.
func (n *Node) Predecessor() *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred != nil && !n.pred.Alive() {
		return nil
	}
	return n.pred
}

// SuccessorList returns a copy of the node's successor list.
func (n *Node) SuccessorList() []*Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Node, len(n.succs))
	copy(out, n.succs)
	return out
}

// Finger returns finger-table entry j (1-based, 1 <= j <= id.Bits): the
// first node that succeeds id(n) + 2^(j-1) on the ring.
func (n *Node) Finger(j int) *Node {
	if j < 1 || j > id.Bits {
		panic(fmt.Sprintf("chord: finger index %d out of range [1,%d]", j, id.Bits))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fingers[j-1]
}

// OwnsKey reports whether identifier k is in this node's arc of
// responsibility, i.e. k ∈ (pred(n), n]. A node with no predecessor
// (singleton ring) owns every key.
func (n *Node) OwnsKey(k id.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred == nil || !n.pred.Alive() {
		return true
	}
	return id.BetweenRightIncl(k, n.pred.id, n.id)
}

// closestPrecedingAlive returns the furthest finger of n that lies strictly
// between n and target on the ring and is still alive — the next hop in
// Chord routing. It returns n itself when no finger qualifies.
func (n *Node) closestPrecedingAlive(target id.ID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	for j := id.Bits - 1; j >= 0; j-- {
		f := n.fingers[j]
		if f == nil || !f.Alive() {
			continue
		}
		if id.Between(f.id, n.id, target) {
			return f
		}
	}
	// Fall back on the successor list, which may be closer than any finger
	// after churn.
	for j := len(n.succs) - 1; j >= 0; j-- {
		s := n.succs[j]
		if s != nil && s.Alive() && id.Between(s.id, n.id, target) {
			return s
		}
	}
	return n
}

// String renders the node as key@shortid for logs.
func (n *Node) String() string {
	return fmt.Sprintf("%s@%s", n.key, n.id.Short())
}
