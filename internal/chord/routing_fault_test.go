package chord

import (
	"errors"
	"math/rand"
	"testing"

	"cqjoin/internal/id"
)

// Regression: routing must keep agreeing with the oracle on a ring that is
// mid-stabilization — nodes have crashed, only partial maintenance rounds
// have run, finger tables are stale — by falling back on successor chains.
// Running enough cheap rounds must then converge to the exact ring without
// any oracle repair.
func TestRoutingMidStabilization(t *testing.T) {
	net := New(Config{SuccessorListLen: 8})
	net.AddNodes("mid", 64)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 8; i++ {
		nodes := net.Nodes()
		net.Fail(nodes[rng.Intn(len(nodes))])
	}

	// One partial round: predecessors and successors heal, but only 4 of
	// the 160 finger entries per node are refreshed.
	net.StabilizeOnce(4)
	assertRoutingMatchesOracle(t, net, rng, 200)

	// Keep running cheap rounds; 40 rounds of 4 fingers cycle every entry.
	for r := 0; r < 40; r++ {
		net.StabilizeOnce(4)
	}
	assertRingExact(t, net)
	for _, n := range net.Nodes() {
		for j := 1; j <= id.Bits; j++ {
			start := n.ID().AddPow2(uint(j - 1))
			if got, want := n.Finger(j), net.OracleSuccessor(start); got != want {
				t.Fatalf("finger %d of %s = %v, want %v", j, n, got, want)
			}
		}
	}
}

// Regression: a multisend that gets stuck mid-ring must still charge the
// hops it travelled and report the deliveries it completed, leaving nil
// recipient slots for the rest, so callers can retry exactly the failures.
func TestMultisendPartialHopAccounting(t *testing.T) {
	net := New(Config{})
	net.AddNodes("acct", 8)

	// Poison one node: its whole successor list is dead, but its
	// predecessor is alive so it does not believe it owns the full ring. A
	// batch relayed through it for keys it does not own can make no
	// progress.
	ring := net.Nodes()
	poisoned := ring[0]
	deadID := id.Hash("acct-dead")
	dead := &Node{net: net, key: "acct-dead", id: deadID}
	poisoned.mu.Lock()
	poisoned.succs = []*Node{dead}
	for j := range poisoned.fingers {
		poisoned.fingers[j] = dead
	}
	poisoned.mu.Unlock()

	// Target a key owned by the poisoned node's true successor, so the
	// batch has to route through/over it.
	target := ring[1].ID()
	before := net.Traffic().Hops("probe")
	recipients, hops, err := poisoned.Multisend([]Deliverable{
		{Target: poisoned.ID(), Msg: testMsg{kind: "probe"}}, // deliverable locally
		{Target: target, Msg: testMsg{kind: "probe"}},        // cannot make progress
	})
	if !errors.Is(err, ErrRoutingFailed) {
		t.Fatalf("err = %v, want ErrRoutingFailed", err)
	}
	if recipients[0] != poisoned {
		t.Fatalf("local deliverable not delivered: recipients = %v", recipients)
	}
	if recipients[1] != nil {
		t.Fatalf("stuck deliverable reported a recipient: %v", recipients[1])
	}
	if got := net.Traffic().Hops("probe") - before; got != int64(hops) {
		t.Fatalf("ledger charged %d hops, Multisend reported %d", got, hops)
	}
}

// A failed lookup must charge the hops it consumed without counting a
// message, so wasted routing work during churn is visible in the ledger.
func TestDeadOriginLookupAccounting(t *testing.T) {
	net := New(Config{})
	net.AddNodes("dl", 4)
	n := net.Nodes()[0]
	net.Fail(n)
	msgsBefore := net.Traffic().Messages("lookup")
	if _, _, err := n.Lookup(id.Hash("anything")); !errors.Is(err, ErrRoutingFailed) {
		t.Fatalf("lookup from dead origin: err = %v, want ErrRoutingFailed", err)
	}
	if got := net.Traffic().Messages("lookup") - msgsBefore; got != 0 {
		t.Fatalf("failed lookup counted %d messages, want 0", got)
	}
}

// dropAll is an Interceptor that suppresses every delivery.
type dropAll struct{ dropped int }

func (d *dropAll) Deliver(from, dst *Node, msg Message, forward func() bool) int {
	d.dropped++
	return 0
}

// dupAll delivers every message twice.
type dupAll struct{}

func (dupAll) Deliver(from, dst *Node, msg Message, forward func() bool) int {
	n := 0
	if forward() {
		n++
	}
	if forward() {
		n++
	}
	return n
}

type countHandler struct{ got int }

func (h *countHandler) HandleMessage(on *Node, msg Message) { h.got++ }

// Send must surface a missing synchronous ack as ErrDropped while still
// returning the routed recipient and charging the hops, so the sender can
// retry the exact same destination.
func TestInterceptorAckSemantics(t *testing.T) {
	net := New(Config{})
	net.AddNodes("ic", 16)
	nodes := net.Nodes()
	src, dst := nodes[0], nodes[5]
	h := &countHandler{}
	dst.SetHandler(h)

	drop := &dropAll{}
	net.SetInterceptor(drop)
	got, hops, err := src.Send(testMsg{kind: "probe"}, dst.ID())
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("dropped send: err = %v, want ErrDropped", err)
	}
	if got != dst {
		t.Fatalf("dropped send must still name the recipient: got %v", got)
	}
	if h.got != 0 {
		t.Fatalf("handler ran %d times despite drop", h.got)
	}
	if hops == 0 {
		t.Fatalf("expected routed hops to be reported")
	}

	net.SetInterceptor(dupAll{})
	if _, _, err := src.Send(testMsg{kind: "probe"}, dst.ID()); err != nil {
		t.Fatalf("duplicated send: %v", err)
	}
	if h.got != 2 {
		t.Fatalf("duplication delivered %d copies, want 2", h.got)
	}

	net.SetInterceptor(nil)
	if !src.DirectSend(testMsg{kind: "probe"}, dst) {
		t.Fatalf("direct send to alive node must ack")
	}
	if h.got != 3 {
		t.Fatalf("direct send delivered %d total, want 3", h.got)
	}
	net.Fail(dst)
	if src.DirectSend(testMsg{kind: "probe"}, dst) {
		t.Fatalf("direct send to dead node must not ack")
	}
}

// Interceptors see every delivery path: routed sends, direct sends and
// multisend relaying.
func TestInterceptorCoversAllPaths(t *testing.T) {
	net := New(Config{})
	net.AddNodes("cover", 12)
	nodes := net.Nodes()
	drop := &dropAll{}
	net.SetInterceptor(drop)

	src := nodes[0]
	if _, _, err := src.Send(testMsg{kind: "probe"}, nodes[4].ID()); !errors.Is(err, ErrDropped) {
		t.Fatalf("send: err = %v, want ErrDropped", err)
	}
	if src.DirectSend(testMsg{kind: "probe"}, nodes[5]) {
		t.Fatalf("direct send must miss its ack under dropAll")
	}
	recipients, _, err := src.Multisend([]Deliverable{
		{Target: nodes[2].ID(), Msg: testMsg{kind: "probe"}},
		{Target: nodes[7].ID(), Msg: testMsg{kind: "probe"}},
	})
	if err != nil {
		t.Fatalf("multisend: %v", err)
	}
	for i, r := range recipients {
		if r != nil {
			t.Fatalf("recipients[%d] = %v, want nil under dropAll", i, r)
		}
	}
	if drop.dropped != 4 {
		t.Fatalf("interceptor saw %d deliveries, want 4", drop.dropped)
	}
}
