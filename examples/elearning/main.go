// E-learning scenario from Section 3.2 of the thesis: an EDUTELLA-style
// network where research papers are inserted as they are published and
// subscribers are notified about new papers by authors they follow —
// including while they are offline. Run with:
//
//	go run ./examples/elearning
package main

import (
	"fmt"
	"log"

	"cqjoin"
)

func main() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("Document", "Id", "Title", "Conference", "AuthorId"),
		cqjoin.MustSchema("Authors", "Id", "Name", "Surname"),
	)
	cluster, err := cqjoin.NewCluster(cqjoin.Config{
		Nodes:   256,
		Catalog: catalog,
		// SAI with the min-rate strategy: author records arrive far less
		// often than documents, so queries are indexed on the quiet side
		// (Section 4.3.6).
		Algorithm: cqjoin.SAI,
		Strategy:  cqjoin.StrategyMinRate,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.OnNotify(func(n cqjoin.Notification) {
		fmt.Printf("  -> %s learns: %s (delivered at t=%d)\n", n.Subscriber, n, n.DeliveredAt)
	})

	// Seed the library so arrival-rate statistics exist.
	librarian := cluster.Node(9)
	for i := 0; i < 5; i++ {
		librarian.Publish("Authors", 100+i, "Author", fmt.Sprintf("Nr%d", i))
		librarian.Publish("Document", 200+i, fmt.Sprintf("Old Paper %d", i), "TR", 100+i)
		librarian.Publish("Document", 300+i, fmt.Sprintf("Older Paper %d", i), "TR", 100+i)
	}

	// The thesis query: notify me whenever author Smith publishes.
	reader := cluster.Node(0)
	if _, err := reader.Subscribe(`
		SELECT D.Title, D.Conference
		FROM Document AS D, Authors AS A
		WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s follows papers by Smith\n", reader.Key())

	// Smith registers and publishes a first paper: one notification.
	librarian.Publish("Authors", 17, "John", "Smith")
	librarian.Publish("Document", 1, "Continuous Queries over DHTs", "ICDE", 17)

	// The reader disconnects; Smith publishes again. The notification is
	// stored at Successor(Id(reader)) per Section 4.6...
	fmt.Printf("%s goes offline\n", reader.Key())
	readerKey := reader.Key()
	reader.Leave()
	librarian.Publish("Document", 2, "Two-way Equi-joins at Scale", "VLDB", 17)

	// ...and replayed when the reader reconnects under the same key.
	fmt.Printf("%s reconnects\n", readerKey)
	if _, err := cluster.Join(readerKey); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("total notifications delivered: %d\n", len(cluster.Notifications()))
}
