// Market-feed scenario: continuous joins over two asynchronous streams —
// trades and news alerts — the stream-processing motivation of the paper's
// introduction. Hundreds of standing queries watch for trades in symbols
// that have an active alert; the DAI-T algorithm keeps the steady-state
// traffic low because each standing query's rewrites are reindexed only
// once per symbol. Run with:
//
//	go run ./examples/marketfeed
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cqjoin"
)

func main() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("Trades", "Id", "Symbol", "Price", "Size"),
		cqjoin.MustSchema("Alerts", "Id", "Symbol", "Severity"),
	)
	cluster, err := cqjoin.NewCluster(cqjoin.Config{
		Nodes:     512,
		Catalog:   catalog,
		Algorithm: cqjoin.DAIT,
		UseJFRT:   true,
		Window:    2000, // stale alerts/trades slide out of the join window
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	delivered := 0
	cluster.OnNotify(func(n cqjoin.Notification) { delivered++ })

	// 200 trading desks install severity-filtered standing queries.
	for i := 0; i < 200; i++ {
		desk := cluster.Node(i)
		sql := fmt.Sprintf(`
			SELECT T.Symbol, T.Price, A.Severity
			FROM Trades AS T, Alerts AS A
			WHERE T.Symbol = A.Symbol AND A.Severity >= %d`, 1+i%3)
		if _, err := desk.Subscribe(sql); err != nil {
			log.Fatal(err)
		}
	}

	// Replay a synthetic feed: skewed symbol popularity, alerts rare,
	// trades frequent.
	rng := rand.New(rand.NewSource(7))
	symbols := []string{"ACME", "GLOBO", "INITECH", "HOOLI", "PIEDPIPER", "UMBRELLA"}
	symbol := func() string {
		// Zipf-ish: low indexes much more popular.
		return symbols[rng.Intn(1+rng.Intn(len(symbols)))]
	}
	for i := 0; i < 300; i++ {
		feed := cluster.Node(200 + rng.Intn(300))
		if rng.Intn(10) == 0 {
			if _, err := feed.Publish("Alerts", i, symbol(), 1+rng.Intn(3)); err != nil {
				log.Fatal(err)
			}
		} else {
			if _, err := feed.Publish("Trades", i, symbol(), 50+rng.Intn(100), 1+rng.Intn(1000)); err != nil {
				log.Fatal(err)
			}
		}
	}
	cluster.EvictExpired()

	fmt.Printf("delivered %d notifications to 200 standing queries\n", delivered)
	fmt.Printf("traffic:\n%s\n", cluster.Traffic())
	fmt.Printf("filtering load: %s\n", cluster.FilteringLoad())
	fmt.Printf("storage load:   %s\n", cluster.StorageLoad())
}
