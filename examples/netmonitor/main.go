// Network-monitoring scenario (the monitoring application class cited in
// the paper's introduction): correlate flow records with intrusion
// signatures using a type-T2 join — an arithmetic expression over several
// attributes on each side — which only the DAI-V algorithm of Section 4.5
// can evaluate. Run with:
//
//	go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cqjoin"
)

func main() {
	catalog := cqjoin.MustCatalog(
		// Flows: sampled flow records with byte and packet counters.
		cqjoin.MustSchema("Flows", "Id", "SrcSubnet", "Bytes", "Packets"),
		// Signatures: anomaly profiles expressed on a derived score.
		cqjoin.MustSchema("Signatures", "Id", "Name", "Score", "Weight"),
	)
	cluster, err := cqjoin.NewCluster(cqjoin.Config{
		Nodes:     256,
		Catalog:   catalog,
		Algorithm: cqjoin.DAIV, // required: the join sides are expressions
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.OnNotify(func(n cqjoin.Notification) {
		fmt.Printf("  alert: %s\n", n)
	})

	// A type-T2 continuous query: a flow matches a signature when its
	// derived score (bytes/packets, the mean packet size) equals the
	// signature's weighted score. Both sides are multi-attribute
	// expressions — no single index attribute exists.
	soc := cluster.Node(0)
	if _, err := soc.Subscribe(`
		SELECT F.SrcSubnet, S.Name
		FROM Flows AS F, Signatures AS S
		WHERE F.Bytes / F.Packets = S.Score * S.Weight`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("SOC installed a T2 correlation query (DAI-V)")

	// Install signatures, then replay flow records.
	sensors := cluster.Node(40)
	sensors.Publish("Signatures", 1, "exfil-1500", 750, 2) // score*weight = 1500
	sensors.Publish("Signatures", 2, "beacon-64", 32, 2)   // 64

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		packets := 1 + rng.Intn(10)
		var bytes int
		switch rng.Intn(5) {
		case 0:
			bytes = 1500 * packets // matches exfil-1500
		case 1:
			bytes = 64 * packets // matches beacon-64
		default:
			bytes = (100 + rng.Intn(900)) * packets
		}
		cluster.Node(50+i).Publish("Flows", i, fmt.Sprintf("10.0.%d.0/24", rng.Intn(16)), bytes, packets)
	}

	fmt.Printf("alerts delivered: %d\n", len(cluster.Notifications()))
	fmt.Printf("traffic:\n%s\n", cluster.Traffic())
}
