// Supply-chain scenario exercising the multi-way extension: a continuous
// three-way chain join correlating orders, shipments and customs
// clearances, which arrive asynchronously from different parties. The
// pipeline generalization of SAI indexes the chain at one endpoint and
// forwards partial matches along the value level. Run with:
//
//	go run ./examples/supplychain
package main

import (
	"fmt"
	"log"

	"cqjoin"
)

func main() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("Orders", "OrderId", "Customer", "Product"),
		cqjoin.MustSchema("Shipments", "ShipId", "OrderId", "Container"),
		cqjoin.MustSchema("Clearances", "ClearId", "Container", "Port"),
	)
	cluster, err := cqjoin.NewCluster(cqjoin.Config{
		Nodes:     256,
		Catalog:   catalog,
		Algorithm: cqjoin.SAI, // multi-way joins need value-level tuple storage
		Strategy:  cqjoin.StrategyMinRate,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.OnNotify(func(n cqjoin.Notification) {
		fmt.Printf("  cleared end-to-end: %s\n", n)
	})

	tracker := cluster.Node(0)
	mq, err := tracker.SubscribeMulti(`
		SELECT O.Customer, S.Container, C.Port
		FROM Orders AS O, Shipments AS S, Clearances AS C
		WHERE O.OrderId = S.OrderId AND S.Container = C.Container`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s tracks order->shipment->clearance chains (query %s, pipeline %s)\n",
		tracker.Key(), mq.Key(), pipeline(mq))

	// Three independent parties feed the network, out of order.
	seller := cluster.Node(10)
	carrier := cluster.Node(20)
	customs := cluster.Node(30)

	customs.Publish("Clearances", 900, "MSKU-1", "Rotterdam") // before anything else
	seller.Publish("Orders", 1, "acme", "widgets")
	seller.Publish("Orders", 2, "globex", "gears")
	carrier.Publish("Shipments", 501, 1, "MSKU-1") // completes order 1 via stored clearance
	carrier.Publish("Shipments", 502, 2, "MSKU-2")
	customs.Publish("Clearances", 901, "MSKU-2", "Hamburg") // completes order 2

	fmt.Printf("chains completed: %d\n", len(cluster.Notifications()))
	fmt.Printf("traffic:\n%s\n", cluster.Traffic())
}

func pipeline(mq *cqjoin.MultiQuery) string {
	out := ""
	for i, r := range mq.Rels() {
		if i > 0 {
			out += " -> "
		}
		out += r.Name()
	}
	return out
}
