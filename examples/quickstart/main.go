// Quickstart: a 128-peer overlay, one continuous join query, two tuple
// insertions, one notification. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cqjoin"
)

func main() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("Orders", "Id", "Customer", "Product"),
		cqjoin.MustSchema("Shipments", "Id", "Product", "Depot"),
	)

	cluster, err := cqjoin.NewCluster(cqjoin.Config{
		Nodes:     128,
		Catalog:   catalog,
		Algorithm: cqjoin.DAIT, // best steady-state traffic (Section 4.4.3)
		UseJFRT:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	cluster.OnNotify(func(n cqjoin.Notification) {
		fmt.Printf("notification for %s: %s\n", n.Subscriber, n)
	})

	// Any peer can pose a continuous query...
	alice := cluster.Node(0)
	q, err := alice.Subscribe(`
		SELECT O.Customer, S.Depot
		FROM Orders AS O, Shipments AS S
		WHERE O.Product = S.Product`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s installed continuous query %s\n", alice.Key(), q.Key())

	// ...and any other peers insert tuples, asynchronously and in any
	// order. The network rewrites and reindexes the query so the matching
	// pair meets at an evaluator node.
	if _, err := cluster.Node(1).Publish("Orders", 1, "acme", "widget"); err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Node(2).Publish("Shipments", 9, "widget", "rotterdam"); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("overlay traffic:\n%s\n", cluster.Traffic())
	fmt.Printf("filtering load: %s\n", cluster.FilteringLoad())
}
