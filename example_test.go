package cqjoin_test

import (
	"fmt"
	"sort"

	"cqjoin"
)

// The canonical flow: build a cluster, pose a continuous join, insert
// tuples from other peers, receive the notification.
func Example() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("Orders", "Id", "Customer", "Product"),
		cqjoin.MustSchema("Shipments", "Id", "Product", "Depot"),
	)
	cluster, err := cqjoin.NewCluster(cqjoin.Config{
		Nodes: 64, Catalog: catalog, Algorithm: cqjoin.DAIT, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	alice := cluster.Node(0)
	if _, err := alice.Subscribe(`
		SELECT O.Customer, S.Depot
		FROM Orders AS O, Shipments AS S
		WHERE O.Product = S.Product`); err != nil {
		fmt.Println(err)
		return
	}

	cluster.Node(1).Publish("Orders", 1, "acme", "widget")
	cluster.Node(2).Publish("Shipments", 9, "widget", "rotterdam")

	for _, n := range cluster.Notifications() {
		fmt.Printf("(%s, %s)\n", n.Values[0].Str(), n.Values[1].Str())
	}
	// Output:
	// (acme, rotterdam)
}

// Selective predicates conjoin with the join condition; only matching
// pairs notify (the thesis's Section 3.2 e-learning query).
func ExampleNode_Subscribe() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("Document", "Id", "Title", "Conference", "AuthorId"),
		cqjoin.MustSchema("Authors", "Id", "Name", "Surname"),
	)
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 64, Catalog: catalog, Seed: 1})
	cluster.Node(0).Subscribe(`
		SELECT D.Title, D.Conference
		FROM Document AS D, Authors AS A
		WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'`)

	lib := cluster.Node(5)
	lib.Publish("Authors", 17, "John", "Smith")
	lib.Publish("Authors", 18, "Ann", "Jones")
	lib.Publish("Document", 1, "P2P Joins", "ICDE", 17)
	lib.Publish("Document", 2, "Other Topic", "VLDB", 18)

	for _, n := range cluster.Notifications() {
		fmt.Printf("%s @ %s\n", n.Values[0].Str(), n.Values[1].Str())
	}
	// Output:
	// P2P Joins @ ICDE
}

// A multi-way chain join correlates three asynchronous streams; tuples may
// arrive in any order.
func ExampleNode_SubscribeMulti() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("Orders", "OrderId", "Customer"),
		cqjoin.MustSchema("Shipments", "OrderId", "Container"),
		cqjoin.MustSchema("Clearances", "Container", "Port"),
	)
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 64, Catalog: catalog, Seed: 1})
	cluster.Node(0).SubscribeMulti(`
		SELECT O.Customer, C.Port
		FROM Orders AS O, Shipments AS S, Clearances AS C
		WHERE O.OrderId = S.OrderId AND S.Container = C.Container`)

	cluster.Node(1).Publish("Clearances", "MSKU-1", "Rotterdam") // first!
	cluster.Node(2).Publish("Orders", 1, "acme")
	cluster.Node(3).Publish("Shipments", 1, "MSKU-1")

	for _, n := range cluster.Notifications() {
		fmt.Printf("%s cleared at %s\n", n.Values[0].Str(), n.Values[1].Str())
	}
	// Output:
	// acme cleared at Rotterdam
}

// The traffic ledger and load distributions quantify what the overlay did.
func ExampleCluster_FilteringLoad() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("R", "A", "B"),
		cqjoin.MustSchema("S", "D", "E"),
	)
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 32, Catalog: catalog, Seed: 1})
	cluster.Node(0).Subscribe(`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)
	for i := 0; i < 10; i++ {
		cluster.Node(i).Publish("R", i, i%3)
		cluster.Node(i+10).Publish("S", i, i%3)
	}
	dist := cluster.FilteringLoad()
	fmt.Printf("nodes that did filtering work: %d of %d\n", dist.NonZero, dist.N)
	fmt.Printf("notifications delivered: %d\n", len(cluster.Notifications()))
	// Output:
	// nodes that did filtering work: 15 of 32
	// notifications delivered: 34
}

// Notifications arrive through a callback as well; ContentKey gives a
// stable identity for deduplication on the consumer side.
func ExampleCluster_OnNotify() {
	catalog := cqjoin.MustCatalog(
		cqjoin.MustSchema("R", "A", "B"),
		cqjoin.MustSchema("S", "D", "E"),
	)
	cluster, _ := cqjoin.NewCluster(cqjoin.Config{Nodes: 32, Catalog: catalog, Algorithm: cqjoin.DAIQ, Seed: 1})
	var keys []string
	cluster.OnNotify(func(n cqjoin.Notification) { keys = append(keys, n.ContentKey()) })

	cluster.Node(0).Subscribe(`SELECT R.A FROM R, S WHERE R.B = S.E`)
	cluster.Node(1).Publish("R", 1, 7)
	cluster.Node(2).Publish("R", 2, 7)
	cluster.Node(3).Publish("S", 0, 7)

	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
	// Output:
	// peer5#1|1
	// peer5#1|2
}
