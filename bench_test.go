// Benchmarks regenerating every table and figure of the paper's evaluation
// chapter (one benchmark per experiment id; see DESIGN.md §3 for the
// index). Each benchmark reruns the experiment b.N times at CI scale and
// reports the headline series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints machine-readable rows. Use
// cmd/joinsim for the formatted tables and for thesis-scale runs.
package cqjoin_test

import (
	"strconv"
	"strings"
	"testing"

	"cqjoin/internal/exp"
)

// benchScale keeps every experiment under a few hundred milliseconds so
// the full -bench=. sweep stays laptop-friendly.
func benchScale() exp.Scale {
	return exp.Scale{Nodes: 192, Queries: 250, Tuples: 250, Seed: 1}
}

// runExperiment wraps one experiment as a benchmark and reports the value
// of the chosen numeric column of the chosen row as a custom metric.
func runExperiment(b *testing.B, id string, metricRow, metricCol int, metricName string) {
	b.Helper()
	e, err := exp.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab *exp.Table
	for i := 0; i < b.N; i++ {
		tab = e.Run(benchScale())
	}
	if tab == nil || len(tab.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	if metricRow < len(tab.Rows) && metricCol < len(tab.Rows[metricRow]) {
		cell := strings.TrimSuffix(tab.Rows[metricRow][metricCol], "%")
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			b.ReportMetric(v, metricName)
		}
	}
}

func BenchmarkTable41(b *testing.B)          { runExperiment(b, "T4.1", 0, 7, "SAI-join-msgs") }
func BenchmarkFig48Multisend(b *testing.B)   { runExperiment(b, "F4.8", 4, 4, "iter/rec-ratio-k256") }
func BenchmarkFig52TrafficJFRT(b *testing.B) { runExperiment(b, "F5.2", 0, 2, "SAI-hops/tuple") }
func BenchmarkFig53QuerySweep(b *testing.B)  { runExperiment(b, "F5.3", 0, 2, "SAI-hops/tuple-minQ") }
func BenchmarkFig54Strategies(b *testing.B)  { runExperiment(b, "F5.4", 1, 1, "minrate-hops/tuple") }
func BenchmarkFig55BosRatio(b *testing.B)    { runExperiment(b, "F5.5", 4, 2, "minrate-hops-bos16") }
func BenchmarkFig56ReplFilter(b *testing.B)  { runExperiment(b, "F5.6", 3, 3, "k8-max-TF") }
func BenchmarkFig57ReplStorage(b *testing.B) { runExperiment(b, "F5.7", 3, 1, "k8-total-TS") }
func BenchmarkFig58WindowFilter(b *testing.B) {
	runExperiment(b, "F5.8", 0, 2, "evalTF-smallW-smallQ")
}
func BenchmarkFig59WindowStorage(b *testing.B) {
	runExperiment(b, "F5.9", 0, 2, "evalTS-smallW-smallQ")
}
func BenchmarkFig510LoadAllAlgos(b *testing.B) { runExperiment(b, "F5.10", 0, 3, "SAI-TF-gini") }
func BenchmarkFig511TwoLevel(b *testing.B)     { runExperiment(b, "F5.11", 2, 2, "DAIT-eval-TF") }
func BenchmarkFig512TupleFreq(b *testing.B)    { runExperiment(b, "F5.12", 0, 3, "SAI-mean-TF") }
func BenchmarkFig513QueryLoad(b *testing.B)    { runExperiment(b, "F5.13", 0, 3, "SAI-mean-TF") }
func BenchmarkFig514NetSize(b *testing.B)      { runExperiment(b, "F5.14", 0, 3, "SAI-mean-smallN") }
func BenchmarkFig515NetSizeTop(b *testing.B)   { runExperiment(b, "F5.15", 0, 3, "SAI-top1-smallN") }
func BenchmarkFig516DAIV(b *testing.B)         { runExperiment(b, "F5.16", 0, 3, "mean-TF-smallN") }
func BenchmarkX45DAIVKeyed(b *testing.B)       { runExperiment(b, "X4.5", 2, 3, "keyed/grouped-factor") }
func BenchmarkX71MultiWay(b *testing.B)        { runExperiment(b, "X7.1", 1, 1, "hops/tuple-k3") }

// Micro-benchmarks of the substrate operations the experiments lean on.

func BenchmarkSubstrateLookup(b *testing.B) {
	sc := benchScale()
	tab := exp.Fig48(exp.Scale{Nodes: sc.Nodes, Seed: sc.Seed})
	if len(tab.Rows) == 0 {
		b.Fatal("no rows")
	}
	// Fig48 at k=1 measures single-lookup cost; reuse it as the metric.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = exp.Fig48(exp.Scale{Nodes: sc.Nodes, Seed: int64(i + 1)})
	}
}
