// Benchmarks regenerating every table and figure of the paper's evaluation
// chapter (one benchmark per experiment id; see DESIGN.md §3 for the
// index). Each benchmark reruns the experiment b.N times at CI scale and
// reports the headline series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints machine-readable rows.
//
// Every benchmark additionally records a manifest entry (wall time,
// allocations, headline paper metrics); when at least one benchmark ran,
// TestMain writes the collected entries to BENCH_<label>.json (label from
// $BENCH_LABEL, default "local") in the current directory. CI uploads that
// file as an artifact and gates it against the committed BENCH_baseline.json
// with cmd/benchdiff; see DESIGN.md §7 and the README for the workflow.
// A plain `go test` run without -bench writes nothing.
//
// Use cmd/joinsim for the formatted tables and for thesis-scale runs.
package cqjoin_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"cqjoin/internal/chord"
	"cqjoin/internal/durable"
	"cqjoin/internal/engine"
	"cqjoin/internal/exp"
	"cqjoin/internal/id"
	"cqjoin/internal/load"
	"cqjoin/internal/metrics"
	"cqjoin/internal/obs"
	"cqjoin/internal/query"
	"cqjoin/internal/relation"
	"cqjoin/internal/workload"
)

// benchManifest collects one entry per benchmark that ran in this process.
var benchManifest = obs.NewCollector()

// TestMain writes the benchmark manifest after the run. Test-only
// invocations collect no entries and write nothing, so `go test ./...`
// stays side-effect free.
func TestMain(m *testing.M) {
	code := m.Run()
	if benchManifest.Len() > 0 {
		label := os.Getenv("BENCH_LABEL")
		if label == "" {
			label = "local"
		}
		path := "BENCH_" + label + ".json"
		man := benchManifest.Manifest(label)
		if err := man.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "bench manifest: %v\n", err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(os.Stderr, "bench: wrote %d manifest entries to %s\n", len(man.Entries), path)
		}
	}
	os.Exit(code)
}

// benchScale keeps every experiment under a few hundred milliseconds so
// the full -bench=. sweep stays laptop-friendly.
func benchScale() exp.Scale {
	return exp.Scale{Nodes: 192, Queries: 250, Tuples: 250, Seed: 1}
}

func scaleInfo(sc exp.Scale) obs.ScaleInfo {
	return obs.ScaleInfo{Nodes: sc.Nodes, Queries: sc.Queries, Tuples: sc.Tuples, Seed: sc.Seed}
}

// memDelta samples allocation counters around a benchmark body.
type memDelta struct{ before runtime.MemStats }

func startMem() *memDelta {
	d := &memDelta{}
	runtime.ReadMemStats(&d.before)
	return d
}

// perOp returns (allocs/op, bytes/op) since startMem, for n iterations.
func (d *memDelta) perOp(n int) (int64, int64) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if n <= 0 {
		n = 1
	}
	return int64(after.Mallocs-d.before.Mallocs) / int64(n),
		int64(after.TotalAlloc-d.before.TotalAlloc) / int64(n)
}

// runExperiment wraps one experiment as a benchmark, reports the value of
// the chosen numeric column of the chosen row as a custom metric, and
// records a manifest entry. A metric cell that is missing or unparsable is
// a benchmark failure: a silently skipped metric would make the manifest
// diff read "no regression" when the experiment in fact stopped reporting.
func runExperiment(b *testing.B, id string, metricRow, metricCol int, metricName string) {
	b.Helper()
	e, err := exp.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	mem := startMem()
	b.ResetTimer()
	var tab *exp.Table
	for i := 0; i < b.N; i++ {
		tab = e.Run(sc)
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	if tab == nil || len(tab.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	if metricRow >= len(tab.Rows) {
		b.Fatalf("%s: metric row %d out of range (table has %d rows)", id, metricRow, len(tab.Rows))
	}
	if metricCol >= len(tab.Rows[metricRow]) {
		b.Fatalf("%s: metric col %d out of range (row %d has %d cells)",
			id, metricCol, metricRow, len(tab.Rows[metricRow]))
	}
	cell := strings.TrimSuffix(tab.Rows[metricRow][metricCol], "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("%s: metric cell (%d,%d) %q is not numeric: %v", id, metricRow, metricCol, cell, err)
	}
	b.ReportMetric(v, metricName)
	benchManifest.Add(obs.Entry{
		Name:        b.Name(),
		Scale:       scaleInfo(sc),
		Iterations:  int64(b.N),
		WallNS:      b.Elapsed().Nanoseconds() / int64(b.N),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		// Experiment outputs are pure functions of code + seed in the
		// simulator, so the table metric gates hard.
		Metrics: map[string]obs.Metric{metricName: obs.Det(v, "")},
	})
}

func BenchmarkTable41(b *testing.B)          { runExperiment(b, "T4.1", 0, 7, "SAI-join-msgs") }
func BenchmarkFig48Multisend(b *testing.B)   { runExperiment(b, "F4.8", 4, 4, "iter/rec-ratio-k256") }
func BenchmarkFig52TrafficJFRT(b *testing.B) { runExperiment(b, "F5.2", 0, 2, "SAI-hops/tuple") }
func BenchmarkFig53QuerySweep(b *testing.B)  { runExperiment(b, "F5.3", 0, 2, "SAI-hops/tuple-minQ") }
func BenchmarkFig54Strategies(b *testing.B)  { runExperiment(b, "F5.4", 1, 1, "minrate-hops/tuple") }
func BenchmarkFig55BosRatio(b *testing.B)    { runExperiment(b, "F5.5", 4, 2, "minrate-hops-bos16") }
func BenchmarkFig56ReplFilter(b *testing.B)  { runExperiment(b, "F5.6", 3, 3, "k8-max-TF") }
func BenchmarkFig57ReplStorage(b *testing.B) { runExperiment(b, "F5.7", 3, 1, "k8-total-TS") }
func BenchmarkFig58WindowFilter(b *testing.B) {
	runExperiment(b, "F5.8", 0, 2, "evalTF-smallW-smallQ")
}
func BenchmarkFig59WindowStorage(b *testing.B) {
	runExperiment(b, "F5.9", 0, 2, "evalTS-smallW-smallQ")
}
func BenchmarkFig510LoadAllAlgos(b *testing.B) { runExperiment(b, "F5.10", 0, 3, "SAI-TF-gini") }
func BenchmarkFig511TwoLevel(b *testing.B)     { runExperiment(b, "F5.11", 2, 2, "DAIT-eval-TF") }
func BenchmarkFig512TupleFreq(b *testing.B)    { runExperiment(b, "F5.12", 0, 3, "SAI-mean-TF") }
func BenchmarkFig513QueryLoad(b *testing.B)    { runExperiment(b, "F5.13", 0, 3, "SAI-mean-TF") }
func BenchmarkFig514NetSize(b *testing.B)      { runExperiment(b, "F5.14", 0, 3, "SAI-mean-smallN") }
func BenchmarkFig515NetSizeTop(b *testing.B)   { runExperiment(b, "F5.15", 0, 3, "SAI-top1-smallN") }
func BenchmarkFig516DAIV(b *testing.B)         { runExperiment(b, "F5.16", 0, 3, "mean-TF-smallN") }
func BenchmarkX45DAIVKeyed(b *testing.B)       { runExperiment(b, "X4.5", 2, 3, "keyed/grouped-factor") }
func BenchmarkX71MultiWay(b *testing.B)        { runExperiment(b, "X7.1", 1, 1, "hops/tuple-k3") }

// BenchmarkHeadlineSAI runs the canonical SAI workload once per iteration
// and records the paper's headline metrics — hops/tuple, msgs/tuple, the
// TF/TS Gini coefficients and delivered notifications — as hard manifest
// metrics. This is the single entry the regression gate leans on most.
func BenchmarkHeadlineSAI(b *testing.B) {
	sc := benchScale()
	mem := startMem()
	b.ResetTimer()
	var m exp.Measurements
	for i := 0; i < b.N; i++ {
		m, _ = exp.Headline(sc)
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	b.ReportMetric(m.HopsPerTuple, "hops/tuple")
	b.ReportMetric(m.TF.Gini, "TF-gini")
	benchManifest.Add(obs.Entry{
		Name:        b.Name(),
		Scale:       scaleInfo(sc),
		Iterations:  int64(b.N),
		WallNS:      b.Elapsed().Nanoseconds() / int64(b.N),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Metrics: map[string]obs.Metric{
			"hops_per_tuple": obs.Det(m.HopsPerTuple, "hops"),
			"msgs_per_tuple": obs.Det(m.MsgsPerTuple, "msgs"),
			"tf_gini":        obs.Det(m.TF.Gini, ""),
			"ts_gini":        obs.Det(m.TS.Gini, ""),
			"tf_total":       obs.Det(m.TF.Total, "ops"),
			"ts_total":       obs.Det(m.TS.Total, "items"),
			"notifications":  {Value: float64(m.Notifications), Deterministic: true, LowerIsBetter: false},
		},
	})
}

// BenchmarkSkewedHotKeys is the skewed bench cell gating the adaptive
// hot-key sharding layer (DESIGN.md §13). Each iteration drives a Zipf
// θ=1.1 workload through SAI twice — sharding off, then on — and enforces
// the tentpole's promise in-bench: identical delivered notifications, the
// hottest evaluator shedding at least half its filtering load, and a
// lower evaluator Gini. The manifest records both arms plus the max-load
// ratio so benchdiff gates regressions of the rebalancing itself.
//
// The cell's scale differs from benchScale deliberately: a longer stream
// on a larger overlay lets the Zipf head tower over the warm tail (load
// grows superlinearly in key frequency), and the threshold promotes only
// that head. Promoting the warm tail too would scatter hundreds of
// low-heat replica buckets whose collisions rebuild the hotspot — the
// regime the detector's threshold exists to avoid.
func BenchmarkSkewedHotKeys(b *testing.B) {
	sc := exp.Scale{Nodes: 384, Queries: 60, Tuples: 1000, Seed: 1}
	type arm struct {
		eval   metrics.Distribution
		notifs []string
	}
	// Threshold 32 promotes the head (a few dozen inputs at this scale)
	// and leaves the tail cold; the infinite window keeps promotion a pure
	// function of the per-input event count.
	run := func(threshold int) arm {
		r := exp.Setup(engine.Config{
			Algorithm:       engine.SAI,
			HotKeyThreshold: threshold,
			HotKeyReplicas:  4,
			HotKeyWindow:    1 << 20,
		}, sc, workload.Params{Theta: load.SkewTheta})
		r.SubscribeT1(sc.Queries)
		r.ResetMeters()
		r.PublishTuples(sc.Tuples)
		keys := make([]string, 0, len(r.Eng.Notifications()))
		for _, n := range r.Eng.Notifications() {
			keys = append(keys, n.ContentKey())
		}
		sort.Strings(keys)
		if threshold > 0 && len(r.Eng.HotKeys()) == 0 {
			b.Fatalf("skewed workload promoted nothing at threshold %d", threshold)
		}
		return arm{eval: metrics.SummarizeInt(r.Eng.RoleLoads(metrics.Evaluator, false)), notifs: keys}
	}
	mem := startMem()
	b.ResetTimer()
	var off, on arm
	for i := 0; i < b.N; i++ {
		off = run(0)
		on = run(32)
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(2 * b.N)
	if len(off.notifs) == 0 {
		b.Fatal("skewed workload produced no notifications")
	}
	if !reflect.DeepEqual(off.notifs, on.notifs) {
		b.Fatalf("sharding changed results: %d vs %d notifications", len(on.notifs), len(off.notifs))
	}
	ratio := 0.0
	if on.eval.Max > 0 {
		ratio = off.eval.Max / on.eval.Max
	}
	if ratio < 2 {
		b.Fatalf("max evaluator load ratio %.2f < 2 (off %.0f, on %.0f)", ratio, off.eval.Max, on.eval.Max)
	}
	if on.eval.Gini >= off.eval.Gini {
		b.Fatalf("evaluator Gini %.3f did not drop from %.3f", on.eval.Gini, off.eval.Gini)
	}
	b.ReportMetric(ratio, "max-load-ratio")
	b.ReportMetric(on.eval.Gini, "TF-gini-on")
	benchManifest.Add(obs.Entry{
		Name:        b.Name(),
		Scale:       scaleInfo(sc),
		Iterations:  int64(b.N),
		WallNS:      b.Elapsed().Nanoseconds() / int64(b.N),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Metrics: map[string]obs.Metric{
			"eval_max_off":   obs.Det(off.eval.Max, "ops"),
			"eval_max_on":    obs.Det(on.eval.Max, "ops"),
			"eval_gini_off":  obs.Det(off.eval.Gini, ""),
			"eval_gini_on":   obs.Det(on.eval.Gini, ""),
			"max_load_ratio": {Value: ratio, Unit: "x", Deterministic: true, LowerIsBetter: false},
		},
	})
}

// BenchmarkParallelSpeedup runs one load-distribution experiment
// sequentially and then on the full worker budget each iteration,
// verifying the two tables agree cell for cell — the determinism contract
// of DESIGN.md §8 exercised at bench scale — and reporting the wall-clock
// ratio. The speedup tracks available CPUs, so it gates soft.
func BenchmarkParallelSpeedup(b *testing.B) {
	defer exp.SetParallelism(0)
	e, err := exp.Lookup("F5.10")
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	workers := runtime.GOMAXPROCS(0)
	mem := startMem()
	b.ResetTimer()
	var seqNS, parNS int64
	for i := 0; i < b.N; i++ {
		exp.SetParallelism(1)
		t0 := time.Now()
		seq := e.Run(sc)
		seqNS += time.Since(t0).Nanoseconds()

		exp.SetParallelism(workers)
		t0 = time.Now()
		par := e.Run(sc)
		parNS += time.Since(t0).Nanoseconds()

		if len(seq.Rows) != len(par.Rows) {
			b.Fatalf("row counts diverge: sequential %d, parallel %d", len(seq.Rows), len(par.Rows))
		}
		for r := range seq.Rows {
			for c := range seq.Rows[r] {
				if seq.Rows[r][c] != par.Rows[r][c] {
					b.Fatalf("cell (%d,%d) diverges: sequential %q, parallel %q",
						r, c, seq.Rows[r][c], par.Rows[r][c])
				}
			}
		}
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(2 * b.N)
	speedup := 0.0
	if parNS > 0 {
		speedup = float64(seqNS) / float64(parNS)
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(workers), "workers")
	benchManifest.Add(obs.Entry{
		Name:        b.Name(),
		Scale:       scaleInfo(sc),
		Iterations:  int64(b.N),
		WallNS:      b.Elapsed().Nanoseconds() / int64(b.N),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Metrics: map[string]obs.Metric{
			"speedup":     {Value: speedup, Deterministic: false, LowerIsBetter: false, Unit: "x"},
			"seq_wall_ns": obs.Noisy(float64(seqNS)/float64(b.N), "ns"),
			"par_wall_ns": obs.Noisy(float64(parNS)/float64(b.N), "ns"),
		},
	})
}

// Micro-benchmarks of the substrate operations the experiments lean on.

// BenchmarkSubstrateLookup measures one Chord lookup per iteration on a
// fixed overlay and reports the mean hop count — a real per-lookup metric,
// not a whole-experiment rerun.
func BenchmarkSubstrateLookup(b *testing.B) {
	sc := benchScale()
	net := chord.New(chord.Config{})
	net.AddNodes("peer", sc.Nodes)
	nodes := net.Nodes()
	if len(nodes) == 0 {
		b.Fatal("empty overlay")
	}
	mem := startMem()
	b.ResetTimer()
	var totalHops int64
	for i := 0; i < b.N; i++ {
		origin := nodes[i%len(nodes)]
		target := id.Hash("bench-lookup-" + strconv.Itoa(i))
		_, hops, err := origin.Lookup(target)
		if err != nil {
			b.Fatal(err)
		}
		totalHops += int64(hops)
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	meanHops := float64(totalHops) / float64(b.N)
	b.ReportMetric(meanHops, "hops/lookup")
	benchManifest.Add(obs.Entry{
		Name:        b.Name(),
		Scale:       obs.ScaleInfo{Nodes: sc.Nodes, Seed: sc.Seed},
		Iterations:  int64(b.N),
		WallNS:      b.Elapsed().Nanoseconds() / int64(b.N),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		// Mean hops depends on b.N (which lookups ran), so it gates soft.
		Metrics: map[string]obs.Metric{"hops_per_lookup": obs.Noisy(meanHops, "hops")},
	})
}

// BenchmarkWALAppend measures the durability hot path (DESIGN.md §14):
// each iteration publishes one tuple through a durable store, which
// appends a CRC-framed record to the write-ahead log and fsyncs before
// acknowledging. Auto-checkpointing is disabled (SnapshotEvery < 0) so
// the log stays pure appends, and the measured WAL growth divided by
// b.N is the exact per-publish footprint — a pure function of the
// record codec at the pinned -benchtime 1x, so it gates hard. Wall time
// is fsync-dominated and gates soft through the entry's wall-ns field.
// The manifest entry carries the explicit name "wal-append" so the
// benchdiff gate keys on the subsystem, not the Go benchmark name.
func BenchmarkWALAppend(b *testing.B) {
	rs := relation.MustSchema("R", "A", "B", "C")
	ss := relation.MustSchema("S", "D", "E", "F")
	catalog := relation.MustCatalog(rs, ss)
	dir := b.TempDir()
	net := chord.New(chord.Config{})
	net.AddNodes("peer", 64)
	eng := engine.New(net, catalog, engine.Config{Seed: 7})
	st, err := durable.Open(dir, catalog, durable.Options{SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Abandon()
	if _, err := st.Recover(eng); err != nil {
		b.Fatal(err)
	}
	nodes := net.Nodes()
	if _, err := st.Subscribe(nodes[0], query.MustParse(catalog,
		`SELECT R.A, S.D FROM R, S WHERE R.B = S.E`)); err != nil {
		b.Fatal(err)
	}
	walPath := filepath.Join(dir, "wal.log")
	walSize := func() int64 {
		fi, err := os.Stat(walPath)
		if err != nil {
			b.Fatal(err)
		}
		return fi.Size()
	}
	base := walSize()
	mem := startMem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch := rs
		if i%2 == 1 {
			sch = ss
		}
		tu := relation.MustTuple(sch,
			relation.N(float64(i%5)), relation.N(float64(i%3)), relation.N(0))
		if _, err := st.Publish(nodes[i%len(nodes)], tu); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	perOp := float64(walSize()-base) / float64(b.N)
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(perOp, "wal-B/op")
	benchManifest.Add(obs.Entry{
		Name:        "wal-append",
		Scale:       obs.ScaleInfo{Nodes: 64, Seed: 7},
		Iterations:  int64(b.N),
		WallNS:      b.Elapsed().Nanoseconds() / int64(b.N),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Metrics: map[string]obs.Metric{
			"wal_bytes_per_op": obs.Det(perOp, "bytes"),
		},
	})
}

// BenchmarkTransportLoopback drives the canonical SAI workload with every
// delivery forced through the TCP transport's loopback path
// (dial → frame → encode → decode → ack) and records the transport's
// metric registry in the manifest. The delivered-notification count must
// equal the simulated run's and gates hard; socket-level counters (dials,
// frames, bytes) depend on pooling and timing, so they gate soft.
func BenchmarkTransportLoopback(b *testing.B) {
	defer exp.SetParallelism(0)
	sc := exp.Scale{Nodes: 64, Queries: 60, Tuples: 80, Seed: 23}
	mem := startMem()
	b.ResetTimer()
	var snap map[string]float64
	notes := 0
	for i := 0; i < b.N; i++ {
		exp.SetParallelism(1)
		r := exp.Setup(engine.Config{Algorithm: engine.SAI, MaxRetries: 3, RetryBackoff: 1}, sc, workload.Params{})
		reg, cleanup := loopbackTransport(b, r.Net, r.Gen.Catalog())
		r.SubscribeT1(sc.Queries)
		r.PublishTuples(sc.Tuples)
		notes = len(r.Eng.Notifications())
		snap = reg.Snapshot()
		cleanup()
		if snap["transport.rpc_failures"] != 0 || snap["transport.decode_errors"] != 0 {
			b.Fatalf("loopback run had transport errors: %v", snap)
		}
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	b.ReportMetric(snap["transport.dials"], "dials")
	b.ReportMetric(snap["transport.frame_bytes_out"], "frame-bytes")
	benchManifest.Add(obs.Entry{
		Name:        b.Name(),
		Scale:       scaleInfo(sc),
		Iterations:  int64(b.N),
		WallNS:      b.Elapsed().Nanoseconds() / int64(b.N),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Metrics: map[string]obs.Metric{
			"notifications":   obs.Det(float64(notes), ""),
			"dials":           obs.Noisy(snap["transport.dials"], "conns"),
			"reconnects":      obs.Noisy(snap["transport.reconnects"], "conns"),
			"retries":         obs.Noisy(snap["transport.retries"], ""),
			"frames_out":      obs.Noisy(snap["transport.frames_out"], "frames"),
			"frame_bytes_out": obs.Noisy(snap["transport.frame_bytes_out"], "bytes"),
			"frame_bytes_in":  obs.Noisy(snap["transport.frame_bytes_in"], "bytes"),
		},
	})
}

// The open-loop load benchmarks run the canonical cqload smoke
// configurations (internal/load's Default*Spec / *Config) and record
// their manifest entries under the same names cqload itself uses —
// "cqload/sim" and "cqload/tcp" — so one baseline regeneration
// (`BENCH_LABEL=baseline go test -bench . -benchtime 1x`) refreshes the
// entries the CI load-smoke job gates its cqload artifacts against.
// Entry-level fields (iterations, allocs/op) stay zero to mirror the
// entries cqload itself writes: both gates then compare the identical
// shape, and a zero-allocs CLI manifest never trips the hard
// zero-baseline rule. Each iteration is a full timed run (seconds, not
// microseconds); run them with -benchtime 1x.

func benchLoadRecord(b *testing.B, name string, res load.Result, sc obs.ScaleInfo) {
	b.Helper()
	b.ReportMetric(res.Achieved, "msgs/s")
	b.ReportMetric(res.P99, "p99-ns")
	benchManifest.Add(res.Entry(name, sc))
}

func BenchmarkLoadOpenLoopSim(b *testing.B) {
	var (
		res   load.Result
		scale obs.ScaleInfo
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tgt := load.NewSimTarget(load.DefaultSimSpec())
		r, err := load.Run(tgt, load.SimConfig())
		_ = tgt.Close()
		if err != nil {
			b.Fatal(err)
		}
		res, scale = r, tgt.ScaleInfo(int(r.Total))
	}
	b.StopTimer()
	benchLoadRecord(b, "cqload/sim", res, scale)
}

// BenchmarkLoadOpenLoopSimSkewed is the skewed counterpart of the sim
// smoke: the canonical Zipf θ=1.1 spec with hot-key sharding armed, under
// the same open-loop rate. Its "cqload/sim-skew" entry is what the CI
// load-smoke job's skew run gates against.
func BenchmarkLoadOpenLoopSimSkewed(b *testing.B) {
	var (
		res   load.Result
		scale obs.ScaleInfo
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tgt := load.NewSimTarget(load.SkewedSimSpec())
		r, err := load.Run(tgt, load.SimConfig())
		if err == nil {
			if n, herr := tgt.HotKeys(); herr == nil && n == 0 {
				err = fmt.Errorf("skewed smoke promoted no hot keys")
			}
		}
		_ = tgt.Close()
		if err != nil {
			b.Fatal(err)
		}
		res, scale = r, tgt.ScaleInfo(int(r.Total))
	}
	b.StopTimer()
	benchLoadRecord(b, "cqload/sim-skew", res, scale)
}

func BenchmarkLoadOpenLoopTCP(b *testing.B) {
	var (
		res   load.Result
		scale obs.ScaleInfo
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tgt, err := load.NewSelfHostedTCP(load.DefaultTCPSpec())
		if err != nil {
			b.Fatal(err)
		}
		r, err := load.Run(tgt, load.TCPConfig())
		_ = tgt.Close()
		if err != nil {
			b.Fatal(err)
		}
		res, scale = r, tgt.ScaleInfo(int(r.Total))
	}
	b.StopTimer()
	benchLoadRecord(b, "cqload/tcp", res, scale)
}
